//! The twelve figure drivers.

use std::fmt;

use pagesim_stats::{linear_regression, welch_t_test, LatencyHistogram, Summary};

use crate::config::{PolicyChoice, SwapChoice};
use crate::report::Table;

use super::{Bench, Wl};

/// Tail percentiles used by every latency figure.
const TAIL_PS: [f64; 5] = [50.0, 90.0, 99.0, 99.9, 99.99];

fn tail_row(h: &LatencyHistogram) -> [u64; 5] {
    let mut out = [0u64; 5];
    for (i, p) in TAIL_PS.iter().enumerate() {
        out[i] = if h.count() == 0 {
            0
        } else {
            h.value_at_percentile(*p)
        };
    }
    out
}

// ---------------------------------------------------------------------
// Fig. 1 — mean runtime & faults, MG-LRU normalized to Clock (SSD, 50%)
// ---------------------------------------------------------------------

/// One workload row of Fig. 1.
#[derive(Clone, Debug)]
pub struct Fig1Row {
    /// Workload.
    pub workload: Wl,
    /// MG-LRU mean performance / Clock mean performance (< 1 = MG-LRU wins).
    pub perf_vs_clock: f64,
    /// MG-LRU mean major faults / Clock mean major faults.
    pub faults_vs_clock: f64,
}

/// Fig. 1: MG-LRU vs Clock at SSD swap, 50% capacity ratio.
#[derive(Clone, Debug)]
pub struct Fig1 {
    /// One row per workload.
    pub rows: Vec<Fig1Row>,
}

/// Runs Fig. 1.
pub fn fig1(bench: &Bench) -> Fig1 {
    let rows = Wl::all()
        .into_iter()
        .map(|wl| {
            let clock = bench.cell(wl, PolicyChoice::Clock, SwapChoice::Ssd, 0.5);
            let mglru = bench.cell(wl, PolicyChoice::MgLruDefault, SwapChoice::Ssd, 0.5);
            Fig1Row {
                workload: wl,
                perf_vs_clock: bench.mean_perf(wl, &mglru) / bench.mean_perf(wl, &clock),
                faults_vs_clock: mglru.fault_summary().mean / clock.fault_summary().mean,
            }
        })
        .collect();
    Fig1 { rows }
}

impl fmt::Display for Fig1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(&["workload", "mglru runtime/clock", "mglru faults/clock"]);
        for r in &self.rows {
            t.row(&[
                r.workload.label().into(),
                format!("{:.3}", r.perf_vs_clock),
                format!("{:.3}", r.faults_vs_clock),
            ]);
        }
        write!(f, "Fig 1: MG-LRU normalized to Clock (SSD, 50% ratio)\n{}", t.render())
    }
}

// ---------------------------------------------------------------------
// Fig. 2 / Fig. 5 — joint (runtime, faults) distributions
// ---------------------------------------------------------------------

/// One (workload, policy) scatter of a joint-distribution figure.
#[derive(Clone, Debug)]
pub struct JointCell {
    /// Workload.
    pub workload: Wl,
    /// Policy.
    pub policy: PolicyChoice,
    /// Per-trial (runtime s, major faults) points.
    pub points: Vec<(f64, f64)>,
    /// r² of runtime against faults.
    pub r_squared: f64,
    /// Fitted seconds-per-fault slope.
    pub slope: f64,
    /// Max/min runtime spread.
    pub runtime_spread: f64,
}

/// Fig. 2 (Clock vs MG-LRU) or Fig. 5 (MG-LRU variants) joint
/// distributions on TPC-H and PageRank.
#[derive(Clone, Debug)]
pub struct JointFigure {
    /// Figure id ("fig2" / "fig5").
    pub id: &'static str,
    /// One cell per (workload, policy).
    pub cells: Vec<JointCell>,
}

fn joint(bench: &Bench, id: &'static str, policies: &[PolicyChoice]) -> JointFigure {
    let mut cells = Vec::new();
    for wl in [Wl::Tpch, Wl::PageRank] {
        for &policy in policies {
            let set = bench.cell(wl, policy, SwapChoice::Ssd, 0.5);
            let runtimes = set.runtimes();
            let faults = set.faults();
            let reg = linear_regression(&faults, &runtimes);
            let rt = Summary::of(&runtimes);
            cells.push(JointCell {
                workload: wl,
                policy,
                points: runtimes.iter().copied().zip(faults.iter().copied()).collect(),
                r_squared: reg.r_squared,
                slope: reg.slope,
                runtime_spread: rt.spread(),
            });
        }
    }
    JointFigure { id, cells }
}

/// Runs Fig. 2 (Clock vs default MG-LRU).
pub fn fig2(bench: &Bench) -> JointFigure {
    joint(bench, "fig2", &[PolicyChoice::Clock, PolicyChoice::MgLruDefault])
}

/// Runs Fig. 5 (all MG-LRU variants).
pub fn fig5(bench: &Bench) -> JointFigure {
    joint(bench, "fig5", &PolicyChoice::mglru_variants())
}

impl fmt::Display for JointFigure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: joint (runtime, faults) distributions (SSD, 50% ratio)",
            self.id
        )?;
        let mut t = Table::new(&[
            "workload", "policy", "trials", "rt mean", "rt spread", "r2", "s/fault",
        ]);
        for c in &self.cells {
            let rt: Vec<f64> = c.points.iter().map(|p| p.0).collect();
            t.row(&[
                c.workload.label().into(),
                c.policy.label().into(),
                format!("{}", c.points.len()),
                format!("{:.1}s", Summary::of(&rt).mean),
                format!("{:.2}x", c.runtime_spread),
                format!("{:.3}", c.r_squared),
                format!("{:.2}ms", c.slope * 1e3),
            ]);
        }
        write!(f, "{}", t.render())?;
        writeln!(f, "points (runtime_s, faults):")?;
        for c in &self.cells {
            let pts: Vec<String> = c
                .points
                .iter()
                .map(|(r, fa)| format!("({r:.1},{fa:.0})"))
                .collect();
            writeln!(
                f,
                "  {}/{}: {}",
                c.workload.label(),
                c.policy.label(),
                pts.join(" ")
            )?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Fig. 3 / Fig. 8 / Fig. 12 — tail latency distributions
// ---------------------------------------------------------------------

/// One tail-latency row.
#[derive(Clone, Debug)]
pub struct TailRow {
    /// Workload.
    pub workload: Wl,
    /// Policy.
    pub policy: PolicyChoice,
    /// Capacity ratio.
    pub ratio: f64,
    /// `true` for the read CDF, `false` for writes.
    pub reads: bool,
    /// Latencies (ns) at p50/p90/p99/p99.9/p99.99.
    pub tail_ns: [u64; 5],
}

/// A tail-latency figure (Fig. 3, 8 or 12).
#[derive(Clone, Debug)]
pub struct TailFigure {
    /// Figure id.
    pub id: &'static str,
    /// Swap medium.
    pub swap: SwapChoice,
    /// Rows.
    pub rows: Vec<TailRow>,
}

fn tails(bench: &Bench, id: &'static str, swap: SwapChoice, ratios: &[f64]) -> TailFigure {
    let mut rows = Vec::new();
    for &ratio in ratios {
        for wl in [Wl::YcsbA, Wl::YcsbB, Wl::YcsbC] {
            for policy in [PolicyChoice::Clock, PolicyChoice::MgLruDefault] {
                let set = bench.cell(wl, policy, swap, ratio);
                let read = set.merged_read_latency();
                rows.push(TailRow {
                    workload: wl,
                    policy,
                    ratio,
                    reads: true,
                    tail_ns: tail_row(&read),
                });
                let write = set.merged_write_latency();
                if write.count() > 0 {
                    rows.push(TailRow {
                        workload: wl,
                        policy,
                        ratio,
                        reads: false,
                        tail_ns: tail_row(&write),
                    });
                }
            }
        }
    }
    TailFigure { id, swap, rows }
}

/// Runs Fig. 3: YCSB tails, SSD, 50%.
pub fn fig3(bench: &Bench) -> TailFigure {
    tails(bench, "fig3", SwapChoice::Ssd, &[0.5])
}

/// Runs Fig. 8: YCSB tails, SSD, 75% and 90%.
pub fn fig8(bench: &Bench) -> TailFigure {
    tails(bench, "fig8", SwapChoice::Ssd, &[0.75, 0.9])
}

/// Runs Fig. 12: YCSB tails, ZRAM, 50%.
pub fn fig12(bench: &Bench) -> TailFigure {
    tails(bench, "fig12", SwapChoice::Zram, &[0.5])
}

impl TailFigure {
    /// The p99.99 latency for a specific cell, for shape assertions.
    pub fn p9999(&self, wl: Wl, policy: PolicyChoice, reads: bool) -> Option<u64> {
        self.rows
            .iter()
            .find(|r| r.workload == wl && r.policy == policy && r.reads == reads)
            .map(|r| r.tail_ns[4])
    }
}

impl fmt::Display for TailFigure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: request tail latencies ({}, ratios as listed)",
            self.id,
            self.swap.label()
        )?;
        let mut t = Table::new(&[
            "workload", "ratio", "policy", "rw", "p50", "p90", "p99", "p99.9", "p99.99",
        ]);
        for r in &self.rows {
            let mut cells = vec![
                r.workload.label().to_owned(),
                format!("{:.0}%", r.ratio * 100.0),
                r.policy.label().to_owned(),
                if r.reads { "read" } else { "write" }.to_owned(),
            ];
            cells.extend(r.tail_ns.iter().map(|&ns| crate::report::latency(ns)));
            t.row(&cells);
        }
        write!(f, "{}", t.render())
    }
}

// ---------------------------------------------------------------------
// Fig. 4 — MG-LRU variants normalized to default MG-LRU (SSD, 50%)
// ---------------------------------------------------------------------

/// One (workload, variant) row of Fig. 4.
#[derive(Clone, Debug)]
pub struct Fig4Row {
    /// Workload.
    pub workload: Wl,
    /// MG-LRU variant.
    pub policy: PolicyChoice,
    /// Mean performance / default MG-LRU mean performance.
    pub perf_norm: f64,
    /// Mean faults / default MG-LRU mean faults.
    pub faults_norm: f64,
}

/// Fig. 4: alternate MG-LRU configurations.
#[derive(Clone, Debug)]
pub struct Fig4 {
    /// Rows, grouped by workload.
    pub rows: Vec<Fig4Row>,
}

/// Runs Fig. 4.
pub fn fig4(bench: &Bench) -> Fig4 {
    let mut rows = Vec::new();
    for wl in Wl::all() {
        let base = bench.cell(wl, PolicyChoice::MgLruDefault, SwapChoice::Ssd, 0.5);
        let base_perf = bench.mean_perf(wl, &base);
        let base_faults = base.fault_summary().mean;
        for policy in PolicyChoice::mglru_variants() {
            let set = bench.cell(wl, policy, SwapChoice::Ssd, 0.5);
            rows.push(Fig4Row {
                workload: wl,
                policy,
                perf_norm: bench.mean_perf(wl, &set) / base_perf,
                faults_norm: set.fault_summary().mean / base_faults,
            });
        }
    }
    Fig4 { rows }
}

impl Fig4 {
    /// Normalized performance of one cell, for shape assertions.
    pub fn perf(&self, wl: Wl, policy: PolicyChoice) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.workload == wl && r.policy == policy)
            .map(|r| r.perf_norm)
    }
}

impl fmt::Display for Fig4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(&["workload", "variant", "runtime/default", "faults/default"]);
        for r in &self.rows {
            t.row(&[
                r.workload.label().into(),
                r.policy.label().into(),
                format!("{:.3}", r.perf_norm),
                format!("{:.3}", r.faults_norm),
            ]);
        }
        write!(
            f,
            "Fig 4: MG-LRU variants normalized to default MG-LRU (SSD, 50%)\n{}",
            t.render()
        )
    }
}

// ---------------------------------------------------------------------
// Fig. 6 — mean performance at 75% / 90% capacity ratios
// ---------------------------------------------------------------------

/// One row of Fig. 6.
#[derive(Clone, Debug)]
pub struct Fig6Row {
    /// Capacity ratio.
    pub ratio: f64,
    /// Workload.
    pub workload: Wl,
    /// Policy.
    pub policy: PolicyChoice,
    /// Mean performance normalized to default MG-LRU.
    pub perf_norm: f64,
    /// Welch two-sided p-value of the runtime difference vs default MG-LRU
    /// (`None` for the baseline itself).
    pub p_value: Option<f64>,
}

/// Fig. 6: capacity-ratio sweep.
#[derive(Clone, Debug)]
pub struct Fig6 {
    /// Rows grouped by ratio then workload.
    pub rows: Vec<Fig6Row>,
}

/// Runs Fig. 6.
pub fn fig6(bench: &Bench) -> Fig6 {
    let mut rows = Vec::new();
    for ratio in [0.75, 0.9] {
        for wl in Wl::all() {
            let base = bench.cell(wl, PolicyChoice::MgLruDefault, SwapChoice::Ssd, ratio);
            let base_perf = bench.mean_perf(wl, &base);
            for policy in PolicyChoice::paper_set() {
                let set = bench.cell(wl, policy, SwapChoice::Ssd, ratio);
                let p_value = if policy == PolicyChoice::MgLruDefault {
                    None
                } else {
                    Some(welch_t_test(&set.runtimes(), &base.runtimes()).p_value)
                };
                rows.push(Fig6Row {
                    ratio,
                    workload: wl,
                    policy,
                    perf_norm: bench.mean_perf(wl, &set) / base_perf,
                    p_value,
                });
            }
        }
    }
    Fig6 { rows }
}

impl fmt::Display for Fig6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(&["ratio", "workload", "policy", "perf/mglru", "p vs mglru"]);
        for r in &self.rows {
            t.row(&[
                format!("{:.0}%", r.ratio * 100.0),
                r.workload.label().into(),
                r.policy.label().into(),
                format!("{:.3}", r.perf_norm),
                r.p_value.map_or("-".into(), |p| format!("{p:.4}")),
            ]);
        }
        write!(
            f,
            "Fig 6: mean performance at higher capacity ratios (SSD)\n{}",
            t.render()
        )
    }
}

// ---------------------------------------------------------------------
// Fig. 7 — normalized fault distributions at 75% / 90%
// ---------------------------------------------------------------------

/// One box-whisker row of Fig. 7.
#[derive(Clone, Debug)]
pub struct Fig7Row {
    /// Capacity ratio.
    pub ratio: f64,
    /// Workload.
    pub workload: Wl,
    /// Policy.
    pub policy: PolicyChoice,
    /// min/q1/median/q3/max of faults, normalized to the default MG-LRU
    /// mean fault count.
    pub box_whisker: [f64; 5],
}

/// Fig. 7: fault distributions at higher capacity ratios.
#[derive(Clone, Debug)]
pub struct Fig7 {
    /// Rows.
    pub rows: Vec<Fig7Row>,
}

/// Runs Fig. 7.
pub fn fig7(bench: &Bench) -> Fig7 {
    let mut rows = Vec::new();
    for ratio in [0.75, 0.9] {
        for wl in [Wl::Tpch, Wl::PageRank] {
            let base = bench.cell(wl, PolicyChoice::MgLruDefault, SwapChoice::Ssd, ratio);
            let base_mean = base.fault_summary().mean.max(1.0);
            for policy in PolicyChoice::paper_set() {
                let set = bench.cell(wl, policy, SwapChoice::Ssd, ratio);
                let s = set.fault_summary();
                rows.push(Fig7Row {
                    ratio,
                    workload: wl,
                    policy,
                    box_whisker: [
                        s.min / base_mean,
                        s.q1 / base_mean,
                        s.median / base_mean,
                        s.q3 / base_mean,
                        s.max / base_mean,
                    ],
                });
            }
        }
    }
    Fig7 { rows }
}

impl fmt::Display for Fig7 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(&["ratio", "workload", "policy", "min", "q1", "med", "q3", "max"]);
        for r in &self.rows {
            let mut cells = vec![
                format!("{:.0}%", r.ratio * 100.0),
                r.workload.label().to_owned(),
                r.policy.label().to_owned(),
            ];
            cells.extend(r.box_whisker.iter().map(|v| format!("{v:.2}")));
            t.row(&cells);
        }
        write!(
            f,
            "Fig 7: fault distributions normalized to default MG-LRU mean (SSD)\n{}",
            t.render()
        )
    }
}

// ---------------------------------------------------------------------
// Fig. 9 / Fig. 10 — ZRAM means
// ---------------------------------------------------------------------

/// One row of the ZRAM mean figures.
#[derive(Clone, Debug)]
pub struct ZramRow {
    /// Workload.
    pub workload: Wl,
    /// Policy.
    pub policy: PolicyChoice,
    /// Value normalized to default MG-LRU (runtime for Fig. 9, faults for
    /// Fig. 10).
    pub norm: f64,
}

/// Fig. 9 (mean performance) or Fig. 10 (mean faults) under ZRAM.
#[derive(Clone, Debug)]
pub struct ZramFigure {
    /// Figure id.
    pub id: &'static str,
    /// Rows.
    pub rows: Vec<ZramRow>,
}

fn zram_means(bench: &Bench, id: &'static str, faults: bool) -> ZramFigure {
    let mut rows = Vec::new();
    for wl in Wl::all() {
        let base = bench.cell(wl, PolicyChoice::MgLruDefault, SwapChoice::Zram, 0.5);
        let base_v = if faults {
            base.fault_summary().mean
        } else {
            bench.mean_perf(wl, &base)
        };
        for policy in PolicyChoice::paper_set() {
            let set = bench.cell(wl, policy, SwapChoice::Zram, 0.5);
            let v = if faults {
                set.fault_summary().mean
            } else {
                bench.mean_perf(wl, &set)
            };
            rows.push(ZramRow {
                workload: wl,
                policy,
                norm: v / base_v,
            });
        }
    }
    ZramFigure { id, rows }
}

/// Runs Fig. 9: mean performance with ZRAM swap at 50%.
pub fn fig9(bench: &Bench) -> ZramFigure {
    zram_means(bench, "fig9", false)
}

/// Runs Fig. 10: mean faults with ZRAM swap at 50%.
pub fn fig10(bench: &Bench) -> ZramFigure {
    zram_means(bench, "fig10", true)
}

impl ZramFigure {
    /// The normalized value for one cell.
    pub fn norm(&self, wl: Wl, policy: PolicyChoice) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.workload == wl && r.policy == policy)
            .map(|r| r.norm)
    }
}

impl fmt::Display for ZramFigure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = if self.id == "fig9" { "performance" } else { "faults" };
        let mut t = Table::new(&["workload", "policy", "norm to mglru"]);
        for r in &self.rows {
            t.row(&[
                r.workload.label().into(),
                r.policy.label().into(),
                format!("{:.3}", r.norm),
            ]);
        }
        write!(
            f,
            "{}: mean {what} with ZRAM swap (50% ratio), normalized to default MG-LRU\n{}",
            self.id,
            t.render()
        )
    }
}

// ---------------------------------------------------------------------
// Fig. 11 — ZRAM vs SSD deltas
// ---------------------------------------------------------------------

/// One row of Fig. 11.
#[derive(Clone, Debug)]
pub struct Fig11Row {
    /// Workload.
    pub workload: Wl,
    /// Policy.
    pub policy: PolicyChoice,
    /// runtime(zram) / runtime(ssd).
    pub runtime_ratio: f64,
    /// faults(zram) / faults(ssd).
    pub fault_ratio: f64,
}

/// Fig. 11: change in runtime and faults between ZRAM and SSD swap.
#[derive(Clone, Debug)]
pub struct Fig11 {
    /// Rows.
    pub rows: Vec<Fig11Row>,
}

/// Runs Fig. 11.
pub fn fig11(bench: &Bench) -> Fig11 {
    let mut rows = Vec::new();
    for wl in Wl::all() {
        for policy in [PolicyChoice::Clock, PolicyChoice::MgLruDefault] {
            let ssd = bench.cell(wl, policy, SwapChoice::Ssd, 0.5);
            let zram = bench.cell(wl, policy, SwapChoice::Zram, 0.5);
            rows.push(Fig11Row {
                workload: wl,
                policy,
                runtime_ratio: zram.runtime_summary().mean / ssd.runtime_summary().mean,
                fault_ratio: zram.fault_summary().mean / ssd.fault_summary().mean,
            });
        }
    }
    Fig11 { rows }
}

impl Fig11 {
    /// The (runtime, fault) ratios for one cell.
    pub fn ratios(&self, wl: Wl, policy: PolicyChoice) -> Option<(f64, f64)> {
        self.rows
            .iter()
            .find(|r| r.workload == wl && r.policy == policy)
            .map(|r| (r.runtime_ratio, r.fault_ratio))
    }
}

impl fmt::Display for Fig11 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(&["workload", "policy", "runtime zram/ssd", "faults zram/ssd"]);
        for r in &self.rows {
            t.row(&[
                r.workload.label().into(),
                r.policy.label().into(),
                format!("{:.3}", r.runtime_ratio),
                format!("{:.3}", r.fault_ratio),
            ]);
        }
        write!(f, "Fig 11: ZRAM vs SSD (50% ratio)\n{}", t.render())
    }
}
