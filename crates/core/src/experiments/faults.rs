//! The `faults` experiment: Clock vs MG-LRU on a degraded swap device.
//!
//! The paper's figures all assume a healthy device; this driver asks what
//! the same policy comparison looks like when the SSD periodically stalls
//! and occasionally fails ([`FaultConfig::stalling_ssd`]). Each cell runs
//! twice — once healthy, once faulted; both live in the shared cell
//! cache (the fault plan is part of the content key, so a sweep can
//! precompute and cache them like any figure cell) —
//! and the report puts the policies' degraded tails side by side with the
//! fault-path counters (retries, kills, allocation stalls, degraded time).

use std::fmt;

use pagesim_stats::LatencyHistogram;

use crate::config::{FaultConfig, PolicyChoice, SwapChoice};
use crate::report::Table;

use super::{Bench, Wl};

/// One (workload, policy) comparison under the stalling-SSD plan.
#[derive(Clone, Debug)]
pub struct FaultsRow {
    /// Workload.
    pub workload: Wl,
    /// Policy.
    pub policy: PolicyChoice,
    /// Mean performance on the healthy device (runtime s, or request ns
    /// for YCSB — the paper's Fig. 1 convention).
    pub healthy_perf: f64,
    /// Mean performance on the degraded device, same units.
    pub faulty_perf: f64,
    /// Read tail on the healthy device: p99 and p99.99 (ns, YCSB only).
    pub healthy_read_tail_ns: [u64; 2],
    /// Read tail on the degraded device: p99 and p99.99 (ns, YCSB only).
    pub faulty_read_tail_ns: [u64; 2],
    /// Injected I/O errors over all trials.
    pub io_errors: u64,
    /// Swap-in retries over all trials.
    pub io_retries: u64,
    /// Tasks killed (OOM + unrecoverable I/O) over all trials.
    pub kills: u64,
    /// The OOM-killer share of `kills`.
    pub oom_kills: u64,
    /// Allocation stalls over all trials.
    pub alloc_stalls: u64,
    /// Mean per-trial degraded time (backoff + stall delay), ns.
    pub degraded_ns_per_trial: u64,
    /// Trials that ended with a [`crate::SimError`].
    pub errors: usize,
}

impl FaultsRow {
    /// Degraded-device slowdown relative to the healthy run.
    pub fn slowdown(&self) -> f64 {
        if self.healthy_perf > 0.0 {
            self.faulty_perf / self.healthy_perf
        } else {
            1.0
        }
    }
}

/// The faults experiment: policies compared on a degraded device.
#[derive(Clone, Debug)]
pub struct FaultsFigure {
    /// Capacity ratio used by every cell.
    pub ratio: f64,
    /// Rows, grouped by workload.
    pub rows: Vec<FaultsRow>,
}

impl FaultsFigure {
    /// The row for a specific cell, for shape assertions.
    pub fn row(&self, wl: Wl, policy: PolicyChoice) -> Option<&FaultsRow> {
        self.rows
            .iter()
            .find(|r| r.workload == wl && r.policy == policy)
    }
}

fn tail2(h: &LatencyHistogram) -> [u64; 2] {
    if h.count() == 0 {
        return [0, 0];
    }
    [h.value_at_percentile(99.0), h.value_at_percentile(99.99)]
}

/// Runs the faults experiment: a batch workload (TPC-H) and a
/// latency-sensitive one (YCSB-A), Clock vs default MG-LRU, on an SSD at
/// the paper's 50% capacity ratio, with [`FaultConfig::stalling_ssd`].
pub fn faults(bench: &Bench) -> FaultsFigure {
    let ratio = 0.5;
    let swap = SwapChoice::Ssd;
    let mut rows = Vec::new();
    for wl in [Wl::Tpch, Wl::YcsbA] {
        for policy in [PolicyChoice::Clock, PolicyChoice::MgLruDefault] {
            let healthy = bench.cell(wl, policy, swap, ratio);
            let faulty = bench.fault_cell(wl, policy, swap, ratio, FaultConfig::stalling_ssd());
            let trials = faulty.runs.len().max(1) as u64;
            rows.push(FaultsRow {
                workload: wl,
                policy,
                healthy_perf: bench.mean_perf(wl, &healthy),
                faulty_perf: bench.mean_perf(wl, &faulty),
                healthy_read_tail_ns: tail2(&healthy.merged_read_latency()),
                faulty_read_tail_ns: tail2(&faulty.merged_read_latency()),
                io_errors: faulty.total_io_errors(),
                io_retries: faulty.total_io_retries(),
                kills: faulty.total_kills(),
                oom_kills: faulty.total_oom_kills(),
                alloc_stalls: faulty.total_alloc_stalls(),
                degraded_ns_per_trial: faulty.total_degraded_ns() / trials,
                errors: faulty.error_count(),
            });
        }
    }
    FaultsFigure { ratio, rows }
}

impl fmt::Display for FaultsFigure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "faults: Clock vs MG-LRU on a stalling SSD ({:.0}% ratio, stalling-ssd plan)",
            self.ratio * 100.0
        )?;
        let mut t = Table::new(&[
            "workload", "policy", "healthy", "faulted", "slowdown", "io_err", "retries", "kills",
            "stalls", "degraded",
        ]);
        for r in &self.rows {
            let perf = |v: f64| {
                if r.workload.is_ycsb() {
                    crate::report::latency(v as u64)
                } else {
                    format!("{v:.2}s")
                }
            };
            t.row(&[
                r.workload.label().to_owned(),
                r.policy.label().to_owned(),
                perf(r.healthy_perf),
                perf(r.faulty_perf),
                format!("{:.2}x", r.slowdown()),
                r.io_errors.to_string(),
                r.io_retries.to_string(),
                r.kills.to_string(),
                r.alloc_stalls.to_string(),
                format!("{:.0}ms", r.degraded_ns_per_trial as f64 / 1e6),
            ]);
        }
        write!(f, "{}", t.render())?;
        writeln!(f, "read tails, healthy -> faulted (p99 / p99.99):")?;
        for r in self.rows.iter().filter(|r| r.workload.is_ycsb()) {
            writeln!(
                f,
                "  {}/{}: {} -> {}  /  {} -> {}",
                r.workload.label(),
                r.policy.label(),
                crate::report::latency(r.healthy_read_tail_ns[0]),
                crate::report::latency(r.faulty_read_tail_ns[0]),
                crate::report::latency(r.healthy_read_tail_ns[1]),
                crate::report::latency(r.faulty_read_tail_ns[1]),
            )?;
        }
        if self.rows.iter().any(|r| r.kills > 0) {
            writeln!(
                f,
                "  note: cells with kills report the runtime of a partially-killed run \
                 (terminated tasks do no further work)"
            )?;
        }
        if self.rows.iter().any(|r| r.errors > 0) {
            for r in self.rows.iter().filter(|r| r.errors > 0) {
                writeln!(
                    f,
                    "  note: {}/{} had {} trial(s) end in a simulation error",
                    r.workload.label(),
                    r.policy.label(),
                    r.errors
                )?;
            }
        }
        Ok(())
    }
}
