//! Run metrics and the multi-trial experiment runner.

use pagesim_engine::rng::trial_seed;
use pagesim_engine::Nanos;
use pagesim_policy::PolicyStats;
use pagesim_stats::{LatencyHistogram, Summary};
use pagesim_swap::SwapStats;
use pagesim_workloads::Workload;

use crate::config::SystemConfig;
use crate::kernel::{Kernel, SimError};

/// Everything one workload execution produces.
#[derive(Clone, Debug, Default)]
pub struct RunMetrics {
    /// Wall-clock runtime of the workload (ns of simulated time).
    pub runtime_ns: Nanos,
    /// Completed MMU touches.
    pub accesses: u64,
    /// Zero-fill (first touch) faults.
    pub minor_faults: u64,
    /// Faults served from the swap device / backing file — the paper's
    /// "fault count".
    pub major_faults: u64,
    /// Pages evicted.
    pub evictions: u64,
    /// Evictions that required a device write.
    pub swap_outs: u64,
    /// Clean evictions served by the swap-cache fast path.
    pub clean_drops: u64,
    /// Faults that found every frame pinned and had to wait.
    pub alloc_stalls: u64,
    /// Faults that waited on another thread's in-flight fault for the
    /// same page (page-lock contention analog).
    pub shared_fault_waits: u64,
    /// Direct-reclaim invocations (allocation dipped into the reserve).
    pub direct_reclaims: u64,
    /// Reclaim batches run by the background reclaim thread.
    pub kswapd_batches: u64,
    /// Times background reclaim paused for write-back throttling.
    pub writeback_throttles: u64,
    /// Slices in which the aging thread did work.
    pub aging_runs: u64,
    /// Read-request latency distribution (YCSB).
    pub read_latency: LatencyHistogram,
    /// Write-request latency distribution (YCSB).
    pub write_latency: LatencyHistogram,
    /// Policy counters.
    pub policy: PolicyStats,
    /// Swap-device counters.
    pub swap_stats: SwapStats,
    /// CPU consumed by application threads.
    pub app_cpu_ns: Nanos,
    /// CPU consumed by kernel threads (reclaim + aging).
    pub kernel_cpu_ns: Nanos,
    /// Workload footprint (pages).
    pub footprint_pages: u32,
    /// Configured physical frames.
    pub capacity_frames: u32,
    /// Bytes held on the swap device at exit (compressed for ZRAM).
    pub swap_used_bytes: u64,
    /// Injected I/O errors observed by the kernel (failed swap-ins and
    /// aborted evictions).
    pub io_errors: u64,
    /// Swap-in retries after transient device errors.
    pub io_retries: u64,
    /// Total time faulting threads slept in retry backoff.
    pub backoff_ns: Nanos,
    /// Tasks killed by an unrecoverable swap-in failure (SIGBUS analog).
    pub io_kills: u64,
    /// Tasks killed by the OOM killer.
    pub oom_kills: u64,
    /// Frames released by task kills (OOM and I/O).
    pub kill_freed_frames: u64,
    /// Evictions rolled back because the device rejected the write-back.
    pub eviction_aborts: u64,
    /// Frames grabbed by memory-pressure balloon steps.
    pub pressure_frames_taken: u64,
    /// Pages scanned by the background reclaim thread (`pgscan_kswapd`).
    pub pgscan_kswapd: u64,
    /// Pages scanned by direct reclaim (`pgscan_direct`).
    pub pgscan_direct: u64,
    /// Anonymous pages reclaimed (`pgsteal_anon`).
    pub pgsteal_anon: u64,
    /// File-backed pages reclaimed (`pgsteal_file`).
    pub pgsteal_file: u64,
    /// Refaults with a live shadow entry (`workingset_refault`).
    pub workingset_refault: u64,
    /// Refaults within one memory-capacity of evictions
    /// (`workingset_activate`).
    pub workingset_activate: u64,
    /// Refaults that restored a clean swap-cache copy without device I/O
    /// pending (`workingset_restore` analog: the slot is kept).
    pub workingset_restore: u64,
    /// Shadow entries dropped when their task was killed
    /// (`workingset_nodereclaim` analog: shadow reclaim).
    pub workingset_nodereclaim: u64,
    /// Shadow entries still live at run end.
    pub shadow_entries: u64,
    /// Refault-distance distribution: evictions between a page's eviction
    /// and its refault (the `workingset.c` distance, in eviction counts).
    pub workingset_refault_distance: LatencyHistogram,
    /// Final `Policy::introspect` dump (`lru_gen` debugfs analog).
    pub lru_gen: String,
    /// First simulation-state violation, if any (the run degrades instead
    /// of panicking).
    pub error: Option<SimError>,
}

impl RunMetrics {
    /// Runtime in seconds of simulated time.
    pub fn runtime_secs(&self) -> f64 {
        self.runtime_ns as f64 / 1e9
    }

    /// Mean request latency across read and write requests, in ns
    /// (the paper normalizes YCSB by average request time).
    pub fn mean_request_latency(&self) -> f64 {
        let n = self.read_latency.count() + self.write_latency.count();
        if n == 0 {
            return 0.0;
        }
        (self.read_latency.mean() * self.read_latency.count() as f64
            + self.write_latency.mean() * self.write_latency.count() as f64)
            / n as f64
    }

    /// Time the run spent in degraded mode: retry backoff sleeps plus
    /// injected device-stall delay.
    pub fn degraded_ns(&self) -> Nanos {
        self.backoff_ns + self.swap_stats.stall_delay_ns
    }

    /// The `/proc/vmstat`-analog counter registry: every counter under its
    /// Linux name, in `/proc/vmstat` order. `pgmajfault` is the existing
    /// major-fault count; the rest are incremented at the same kernel
    /// sites Linux increments them (see the DESIGN.md mapping table).
    pub fn vmstat(&self) -> [(&'static str, u64); 10] {
        [
            ("pgmajfault", self.major_faults),
            ("pgscan_kswapd", self.pgscan_kswapd),
            ("pgscan_direct", self.pgscan_direct),
            ("pgsteal_anon", self.pgsteal_anon),
            ("pgsteal_file", self.pgsteal_file),
            ("workingset_refault", self.workingset_refault),
            ("workingset_activate", self.workingset_activate),
            ("workingset_restore", self.workingset_restore),
            ("workingset_nodereclaim", self.workingset_nodereclaim),
            ("nr_shadow_entries", self.shadow_entries),
        ]
    }

    /// Serializes every field to the versioned line format the on-disk
    /// cell cache stores ([`RunMetrics::from_cache_text`] inverts it
    /// exactly; the roundtrip test in this module covers every field).
    pub fn to_cache_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(1024);
        let _ = writeln!(out, "format {CACHE_FORMAT_VERSION}");
        self.write_scalars(&mut out);
        write_histogram(&mut out, "read_latency", &self.read_latency);
        write_histogram(&mut out, "write_latency", &self.write_latency);
        write_histogram(
            &mut out,
            "workingset_refault_distance",
            &self.workingset_refault_distance,
        );
        let _ = writeln!(out, "lru_gen {}", escape_line(&self.lru_gen));
        let _ = writeln!(out, "error {}", self.error.map_or("-", |e| e.name()));
        out.push_str("end\n");
        out
    }

    /// Parses [`RunMetrics::to_cache_text`] output. Returns `None` on any
    /// format mismatch (wrong version, missing/extra fields, parse error) —
    /// callers treat that as a cache miss and recompute.
    pub fn from_cache_text(text: &str) -> Option<RunMetrics> {
        let mut m = RunMetrics::default();
        let mut lines = text.lines();
        if lines.next()? != format!("format {CACHE_FORMAT_VERSION}") {
            return None;
        }
        m.read_scalars(&mut lines)?;
        m.read_latency = parse_histogram(lines.next()?, "read_latency")?;
        m.write_latency = parse_histogram(lines.next()?, "write_latency")?;
        m.workingset_refault_distance =
            parse_histogram(lines.next()?, "workingset_refault_distance")?;
        m.lru_gen = unescape_line(lines.next()?.strip_prefix("lru_gen ")?)?;
        match lines.next()?.strip_prefix("error ")? {
            "-" => m.error = None,
            name => m.error = Some(SimError::from_name(name)?),
        }
        if lines.next()? != "end" || lines.next().is_some() {
            return None;
        }
        Some(m)
    }
}

/// Version tag inside every cached cell file; bump on any layout change so
/// stale caches read as misses instead of mis-parses.
pub const CACHE_FORMAT_VERSION: u32 = 2;

/// Expands a symmetric writer/reader pair over the listed scalar fields.
/// One list drives both directions, so serializer and parser cannot drift;
/// the roundtrip unit test catches a field missing from the list entirely.
macro_rules! codec_scalars {
    ($($($part:ident).+),* $(,)?) => {
        impl RunMetrics {
            fn write_scalars(&self, out: &mut String) {
                use std::fmt::Write as _;
                $(
                    let _ = writeln!(
                        out,
                        concat!(stringify!($($part).+), " {}"),
                        self.$($part).+
                    );
                )*
            }

            fn read_scalars(&mut self, lines: &mut std::str::Lines<'_>) -> Option<()> {
                $(
                    let rest = lines
                        .next()?
                        .strip_prefix(concat!(stringify!($($part).+), " "))?;
                    self.$($part).+ = rest.parse().ok()?;
                )*
                Some(())
            }
        }
    };
}

codec_scalars!(
    runtime_ns,
    accesses,
    minor_faults,
    major_faults,
    evictions,
    swap_outs,
    clean_drops,
    alloc_stalls,
    shared_fault_waits,
    direct_reclaims,
    kswapd_batches,
    writeback_throttles,
    aging_runs,
    app_cpu_ns,
    kernel_cpu_ns,
    footprint_pages,
    capacity_frames,
    swap_used_bytes,
    io_errors,
    io_retries,
    backoff_ns,
    io_kills,
    oom_kills,
    kill_freed_frames,
    eviction_aborts,
    pressure_frames_taken,
    pgscan_kswapd,
    pgscan_direct,
    pgsteal_anon,
    pgsteal_file,
    workingset_refault,
    workingset_activate,
    workingset_restore,
    workingset_nodereclaim,
    shadow_entries,
    policy.pte_scans,
    policy.rmap_walks,
    policy.promotions,
    policy.evictions,
    policy.aging_passes,
    policy.resorted,
    policy.regions_skipped,
    policy.regions_walked,
    policy.tier_protected,
    swap_stats.reads,
    swap_stats.writes,
    swap_stats.read_queue_ns,
    swap_stats.write_queue_ns,
    swap_stats.io_errors,
    swap_stats.pool_rejections,
    swap_stats.stall_delay_ns,
);

fn write_histogram(out: &mut String, name: &str, h: &LatencyHistogram) {
    use std::fmt::Write as _;
    let (sparse, sum, min, max) = h.to_parts();
    let _ = write!(out, "{name} {sum} {min} {max} {}", sparse.len());
    for (i, c) in sparse {
        let _ = write!(out, " {i}:{c}");
    }
    out.push('\n');
}

fn parse_histogram(line: &str, name: &str) -> Option<LatencyHistogram> {
    let rest = line.strip_prefix(name)?.strip_prefix(' ')?;
    let mut it = rest.split(' ');
    let sum: u128 = it.next()?.parse().ok()?;
    let min: u64 = it.next()?.parse().ok()?;
    let max: u64 = it.next()?.parse().ok()?;
    let n: usize = it.next()?.parse().ok()?;
    let mut sparse = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let (i, c) = it.next()?.split_once(':')?;
        sparse.push((i.parse().ok()?, c.parse().ok()?));
    }
    if it.next().is_some() {
        return None;
    }
    LatencyHistogram::from_parts(&sparse, sum, min, max)
}

/// Flattens a multi-line introspection dump onto one cache line
/// (`\` → `\\`, newline → `\n`); [`unescape_line`] inverts it exactly.
fn escape_line(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn unescape_line(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut it = s.chars();
    while let Some(c) = it.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match it.next()? {
            '\\' => out.push('\\'),
            'n' => out.push('\n'),
            _ => return None,
        }
    }
    Some(out)
}

/// Runs one `(config, workload)` cell.
#[derive(Clone, Debug)]
pub struct Experiment {
    config: SystemConfig,
}

impl Experiment {
    /// Creates an experiment for `config`.
    pub fn new(config: SystemConfig) -> Self {
        Experiment { config }
    }

    /// The configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// One execution ("one reboot"), fully determined by `seed`.
    pub fn run(&self, workload: &dyn Workload, seed: u64) -> RunMetrics {
        Kernel::build(&self.config, workload, seed).run()
    }

    /// Like [`run`](Experiment::run), but with a telemetry collector
    /// attached. The metrics are identical to an untraced run; the tracer
    /// comes back with the collected samples and events.
    #[cfg(feature = "trace")]
    pub fn run_traced(
        &self,
        workload: &dyn Workload,
        seed: u64,
        trace_cfg: pagesim_trace::TraceConfig,
    ) -> (RunMetrics, pagesim_trace::Tracer) {
        let mut kernel = Kernel::build(&self.config, workload, seed);
        kernel.set_tracer(pagesim_trace::Tracer::new(trace_cfg));
        let (metrics, tracer) = kernel.run_traced();
        let tracer = tracer.expect("tracer was attached above");
        (metrics, *tracer)
    }

    /// Runs `trials` independent executions with seeds derived from
    /// `master_seed` (the paper runs 25 per cell).
    pub fn run_trials<W: Workload + Sync>(
        &self,
        workload: &W,
        master_seed: u64,
        trials: u32,
    ) -> TrialSet {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(trials as usize)
            .max(1);
        let mut runs: Vec<Option<RunMetrics>> = vec![None; trials as usize];
        if threads <= 1 {
            for (i, slot) in runs.iter_mut().enumerate() {
                *slot = Some(self.run(workload, trial_seed(master_seed, i as u32)));
            }
        } else {
            let results = parking_lot::Mutex::new(&mut runs);
            let next = std::sync::atomic::AtomicU32::new(0);
            crossbeam::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|_| loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= trials {
                            break;
                        }
                        let m = self.run(workload, trial_seed(master_seed, i));
                        results.lock()[i as usize] = Some(m);
                    });
                }
            })
            .expect("trial worker panicked");
        }
        TrialSet {
            runs: runs.into_iter().map(|r| r.expect("trial missing")).collect(),
        }
    }
}

/// The trials of one experiment cell.
#[derive(Clone, Debug)]
pub struct TrialSet {
    /// Per-trial metrics, in trial order.
    pub runs: Vec<RunMetrics>,
}

impl TrialSet {
    /// Runtimes in seconds.
    pub fn runtimes(&self) -> Vec<f64> {
        self.runs.iter().map(RunMetrics::runtime_secs).collect()
    }

    /// Major-fault counts.
    pub fn faults(&self) -> Vec<f64> {
        self.runs.iter().map(|r| r.major_faults as f64).collect()
    }

    /// Mean request latencies (YCSB cells).
    pub fn mean_request_latencies(&self) -> Vec<f64> {
        self.runs
            .iter()
            .map(RunMetrics::mean_request_latency)
            .collect()
    }

    /// Summary of runtimes.
    pub fn runtime_summary(&self) -> Summary {
        Summary::of(&self.runtimes())
    }

    /// Summary of fault counts.
    pub fn fault_summary(&self) -> Summary {
        Summary::of(&self.faults())
    }

    /// All trials' read-latency histograms merged.
    pub fn merged_read_latency(&self) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for r in &self.runs {
            h.merge(&r.read_latency);
        }
        h
    }

    /// All trials' write-latency histograms merged.
    pub fn merged_write_latency(&self) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for r in &self.runs {
            h.merge(&r.write_latency);
        }
        h
    }

    /// Injected I/O errors summed over trials.
    pub fn total_io_errors(&self) -> u64 {
        self.runs.iter().map(|r| r.io_errors).sum()
    }

    /// Swap-in retries summed over trials.
    pub fn total_io_retries(&self) -> u64 {
        self.runs.iter().map(|r| r.io_retries).sum()
    }

    /// OOM and I/O kills summed over trials.
    pub fn total_kills(&self) -> u64 {
        self.runs.iter().map(|r| r.oom_kills + r.io_kills).sum()
    }

    /// OOM kills summed over trials.
    pub fn total_oom_kills(&self) -> u64 {
        self.runs.iter().map(|r| r.oom_kills).sum()
    }

    /// Allocation stalls summed over trials.
    pub fn total_alloc_stalls(&self) -> u64 {
        self.runs.iter().map(|r| r.alloc_stalls).sum()
    }

    /// Degraded-mode time summed over trials.
    pub fn total_degraded_ns(&self) -> Nanos {
        self.runs.iter().map(RunMetrics::degraded_ns).sum()
    }

    /// Trials that ended with a [`SimError`].
    pub fn error_count(&self) -> usize {
        self.runs.iter().filter(|r| r.error.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PolicyChoice, SwapChoice};
    use pagesim_workloads::tpch::{TpchConfig, TpchWorkload};

    #[test]
    fn trials_are_reproducible_and_distinct() {
        let w = TpchWorkload::new(TpchConfig::tiny());
        let e = Experiment::new(
            SystemConfig::new(PolicyChoice::Clock, SwapChoice::Zram)
                .capacity_ratio(0.5)
                .cores(2),
        );
        let a = e.run_trials(&w, 99, 3);
        let b = e.run_trials(&w, 99, 3);
        assert_eq!(a.runtimes(), b.runtimes());
        assert_eq!(a.faults(), b.faults());
        // trials within a set differ (different derived seeds)
        let r = a.runtimes();
        assert!(r.windows(2).any(|w| w[0] != w[1]), "no variance: {r:?}");
    }

    #[test]
    fn cache_text_roundtrips_every_field() {
        // A real run exercises realistic histogram and counter state...
        let w = TpchWorkload::new(TpchConfig::tiny());
        let e = Experiment::new(
            SystemConfig::new(PolicyChoice::MgLruDefault, SwapChoice::Zram)
                .capacity_ratio(0.5)
                .cores(2),
        );
        let real = e.run(&w, 3);
        let back = RunMetrics::from_cache_text(&real.to_cache_text()).expect("parse");
        assert_eq!(format!("{real:?}"), format!("{back:?}"));

        // ...and a synthetic one pins every scalar field to a distinct
        // value so a field dropped from the codec list fails loudly.
        let mut m = RunMetrics::default();
        let mut next = 1u64;
        let mut stamp = |slot: &mut u64| {
            *slot = next;
            next += 1;
        };
        stamp(&mut m.runtime_ns);
        stamp(&mut m.accesses);
        stamp(&mut m.minor_faults);
        stamp(&mut m.major_faults);
        stamp(&mut m.evictions);
        stamp(&mut m.swap_outs);
        stamp(&mut m.clean_drops);
        stamp(&mut m.alloc_stalls);
        stamp(&mut m.shared_fault_waits);
        stamp(&mut m.direct_reclaims);
        stamp(&mut m.kswapd_batches);
        stamp(&mut m.writeback_throttles);
        stamp(&mut m.aging_runs);
        stamp(&mut m.app_cpu_ns);
        stamp(&mut m.kernel_cpu_ns);
        m.footprint_pages = 91;
        m.capacity_frames = 92;
        stamp(&mut m.swap_used_bytes);
        stamp(&mut m.io_errors);
        stamp(&mut m.io_retries);
        stamp(&mut m.backoff_ns);
        stamp(&mut m.io_kills);
        stamp(&mut m.oom_kills);
        stamp(&mut m.kill_freed_frames);
        stamp(&mut m.eviction_aborts);
        stamp(&mut m.pressure_frames_taken);
        stamp(&mut m.pgscan_kswapd);
        stamp(&mut m.pgscan_direct);
        stamp(&mut m.pgsteal_anon);
        stamp(&mut m.pgsteal_file);
        stamp(&mut m.workingset_refault);
        stamp(&mut m.workingset_activate);
        stamp(&mut m.workingset_restore);
        stamp(&mut m.workingset_nodereclaim);
        stamp(&mut m.shadow_entries);
        stamp(&mut m.policy.pte_scans);
        stamp(&mut m.policy.rmap_walks);
        stamp(&mut m.policy.promotions);
        stamp(&mut m.policy.evictions);
        stamp(&mut m.policy.aging_passes);
        stamp(&mut m.policy.resorted);
        stamp(&mut m.policy.regions_skipped);
        stamp(&mut m.policy.regions_walked);
        stamp(&mut m.policy.tier_protected);
        stamp(&mut m.swap_stats.reads);
        stamp(&mut m.swap_stats.writes);
        stamp(&mut m.swap_stats.read_queue_ns);
        stamp(&mut m.swap_stats.write_queue_ns);
        stamp(&mut m.swap_stats.io_errors);
        stamp(&mut m.swap_stats.pool_rejections);
        stamp(&mut m.swap_stats.stall_delay_ns);
        m.read_latency.record(123);
        m.read_latency.record(456_789);
        m.write_latency.record(7);
        m.workingset_refault_distance.record(42);
        m.workingset_refault_distance.record(9_001);
        m.lru_gen = "memcg 0\n gen 3 age 2\\tier 0\n".to_string();
        m.error = Some(SimError::Deadlock);
        let back = RunMetrics::from_cache_text(&m.to_cache_text()).expect("parse");
        assert_eq!(format!("{m:?}"), format!("{back:?}"));
    }

    #[test]
    fn cache_text_rejects_corruption() {
        let m = RunMetrics::default();
        let text = m.to_cache_text();
        assert!(RunMetrics::from_cache_text(&text).is_some());
        // Wrong version.
        let bad = text.replacen("format ", "format 9", 1);
        assert!(RunMetrics::from_cache_text(&bad).is_none());
        // Truncated.
        let cut = &text[..text.len() / 2];
        assert!(RunMetrics::from_cache_text(cut).is_none());
        // Trailing garbage.
        let long = format!("{text}junk\n");
        assert!(RunMetrics::from_cache_text(&long).is_none());
        // A renamed field.
        let renamed = text.replacen("major_faults", "major_fault", 1);
        assert!(RunMetrics::from_cache_text(&renamed).is_none());
        // A non-numeric value.
        let nan = text.replacen("runtime_ns 0", "runtime_ns x", 1);
        assert!(RunMetrics::from_cache_text(&nan).is_none());
        // An unknown error name.
        let err = text.replacen("error -", "error bogus", 1);
        assert!(RunMetrics::from_cache_text(&err).is_none());
    }

    #[test]
    fn summaries_cover_all_trials() {
        let w = TpchWorkload::new(TpchConfig::tiny());
        let e = Experiment::new(
            SystemConfig::new(PolicyChoice::MgLruDefault, SwapChoice::Zram)
                .capacity_ratio(0.5)
                .cores(2),
        );
        let set = e.run_trials(&w, 5, 4);
        assert_eq!(set.runtime_summary().n, 4);
        assert_eq!(set.fault_summary().n, 4);
        assert!(set.runtime_summary().mean > 0.0);
    }
}
