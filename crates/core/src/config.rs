//! System configuration: the experimental axes of the paper.

use pagesim_engine::faults::{FaultPlan, PressureStep, StallPlan};
use pagesim_engine::{Nanos, MICROSECOND, MILLISECOND, SECOND};
use pagesim_policy::{CostModel, MgLruConfig, ScanMode};

use crate::stablehash::StableHasher;

/// Fault-model configuration: what goes wrong and how the kernel reacts.
///
/// The default ([`FaultConfig::none`]) injects nothing and disables the
/// OOM killer, guaranteeing zero behavior drift on the reproduction path.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultConfig {
    /// Deterministic device/pressure fault plan.
    pub plan: FaultPlan,
    /// ZRAM compressed-pool capacity in bytes (`None` = unbounded).
    pub zram_capacity_bytes: Option<u64>,
    /// Transient swap-in read failures are retried this many times with
    /// exponential backoff before the faulting task is killed (SIGBUS
    /// analog).
    pub max_io_retries: u32,
    /// First retry backoff; doubles per consecutive failure.
    pub retry_backoff_base: Nanos,
    /// Upper bound on a single backoff sleep.
    pub retry_backoff_cap: Nanos,
    /// OOM killer trigger: a thread that retries a starved allocation this
    /// many consecutive times invokes the OOM killer (`None` disables it —
    /// the pre-fault-model livelock behavior).
    pub oom_after_stalls: Option<u32>,
}

impl FaultConfig {
    /// No faults, no OOM killer: the fault-free reproduction path.
    pub fn none() -> FaultConfig {
        FaultConfig {
            plan: FaultPlan::none(),
            zram_capacity_bytes: None,
            max_io_retries: 8,
            retry_backoff_base: 100 * MICROSECOND,
            retry_backoff_cap: 50 * MILLISECOND,
            oom_after_stalls: None,
        }
    }

    /// A stalling, occasionally failing SSD under external memory
    /// pressure: periodic device stalls, a low transient error rate, and
    /// a balloon that grabs a third of memory early on, with the OOM
    /// killer armed. This is the `repro -- faults` scenario.
    pub fn stalling_ssd() -> FaultConfig {
        FaultConfig {
            plan: FaultPlan {
                error_rate: 0.002,
                fail_permanently_at: None,
                stall: Some(StallPlan {
                    first_onset: 500 * MILLISECOND,
                    period: 5 * SECOND,
                    onset_jitter: 100 * MILLISECOND,
                    duration: 1_500 * MILLISECOND,
                    duration_jitter: 250 * MILLISECOND,
                }),
                pressure: vec![PressureStep {
                    at: 2 * SECOND,
                    frac: 0.34,
                    duration: 20 * SECOND,
                }],
            },
            oom_after_stalls: Some(128),
            ..FaultConfig::none()
        }
    }
}

impl FaultConfig {
    /// Whether this is the fault-free reproduction configuration.
    pub fn is_none(&self) -> bool {
        *self == FaultConfig::none()
    }

    /// Hashes every field that changes simulation behavior.
    pub fn hash_into(&self, h: &mut StableHasher) {
        hash_plan(&self.plan, h);
        h.write_opt_u64(self.zram_capacity_bytes);
        h.write_u32(self.max_io_retries);
        h.write_u64(self.retry_backoff_base);
        h.write_u64(self.retry_backoff_cap);
        h.write_opt_u64(self.oom_after_stalls.map(u64::from));
    }
}

fn hash_plan(plan: &FaultPlan, h: &mut StableHasher) {
    h.write_f64(plan.error_rate);
    h.write_opt_u64(plan.fail_permanently_at);
    match &plan.stall {
        None => h.write_bool(false),
        Some(s) => {
            h.write_bool(true);
            h.write_u64(s.first_onset);
            h.write_u64(s.period);
            h.write_u64(s.onset_jitter);
            h.write_u64(s.duration);
            h.write_u64(s.duration_jitter);
        }
    }
    h.write_usize(plan.pressure.len());
    for p in &plan.pressure {
        h.write_u64(p.at);
        h.write_f64(p.frac);
        h.write_u64(p.duration);
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::none()
    }
}

/// Which replacement policy manages memory — the paper's five contenders.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum PolicyChoice {
    /// Classic Clock (active/inactive lists).
    Clock,
    /// MG-LRU with kernel-default parameters.
    MgLruDefault,
    /// MG-LRU with 2^14 generations (*Gen-14*).
    MgLruGen14,
    /// MG-LRU scanning the whole page table each aging pass (*Scan-All*).
    MgLruScanAll,
    /// MG-LRU with the aging walk disabled (*Scan-None*).
    MgLruScanNone,
    /// MG-LRU scanning each region with p = 0.5 (*Scan-Rand*).
    MgLruScanRand,
    /// MG-LRU with an explicit configuration (ablations).
    MgLruCustom(MgLruConfig),
}

impl PolicyChoice {
    /// The five configurations the paper sweeps, in its plotting order.
    pub fn paper_set() -> [PolicyChoice; 6] {
        [
            PolicyChoice::Clock,
            PolicyChoice::MgLruDefault,
            PolicyChoice::MgLruGen14,
            PolicyChoice::MgLruScanAll,
            PolicyChoice::MgLruScanNone,
            PolicyChoice::MgLruScanRand,
        ]
    }

    /// MG-LRU variants only (Fig. 4/5 sweep alternate configurations).
    pub fn mglru_variants() -> [PolicyChoice; 5] {
        [
            PolicyChoice::MgLruDefault,
            PolicyChoice::MgLruGen14,
            PolicyChoice::MgLruScanAll,
            PolicyChoice::MgLruScanNone,
            PolicyChoice::MgLruScanRand,
        ]
    }

    /// Short label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            PolicyChoice::Clock => "clock",
            PolicyChoice::MgLruDefault => "mglru",
            PolicyChoice::MgLruGen14 => "gen-14",
            PolicyChoice::MgLruScanAll => "scan-all",
            PolicyChoice::MgLruScanNone => "scan-none",
            PolicyChoice::MgLruScanRand => "scan-rand",
            PolicyChoice::MgLruCustom(_) => "mglru-custom",
        }
    }

    /// The fully-resolved MG-LRU configuration this choice builds, or
    /// `None` for Clock. The kernel injects the per-trial seed at build
    /// time, so the `seed` field returned here is a placeholder and is
    /// excluded from [`PolicyChoice::hash_into`].
    pub fn resolved_mglru(&self) -> Option<MgLruConfig> {
        match *self {
            PolicyChoice::Clock => None,
            PolicyChoice::MgLruDefault => Some(MgLruConfig::kernel_default()),
            PolicyChoice::MgLruGen14 => Some(MgLruConfig::gen14()),
            PolicyChoice::MgLruScanAll => Some(MgLruConfig::scan_all()),
            PolicyChoice::MgLruScanNone => Some(MgLruConfig::scan_none()),
            PolicyChoice::MgLruScanRand => Some(MgLruConfig::scan_rand(0)),
            PolicyChoice::MgLruCustom(c) => Some(c),
        }
    }

    /// Hashes the resolved policy configuration. Two choices that build
    /// the same policy (e.g. `MgLruDefault` and
    /// `MgLruCustom(MgLruConfig::kernel_default())`) hash identically.
    pub fn hash_into(&self, h: &mut StableHasher) {
        match self.resolved_mglru() {
            None => h.write_str("clock"),
            Some(c) => {
                h.write_str("mglru");
                h.write_u32(c.max_gens);
                match c.scan_mode {
                    ScanMode::Bloom => h.write_str("bloom"),
                    ScanMode::All => h.write_str("all"),
                    ScanMode::None => h.write_str("none"),
                    ScanMode::Rand(p) => {
                        h.write_str("rand");
                        h.write_f64(p);
                    }
                }
                h.write_u32(c.bloom_shift);
                h.write_f64(c.insert_threshold_per_line);
                h.write_bool(c.spatial_scan);
                h.write_f64(c.pid_gains.0);
                h.write_f64(c.pid_gains.1);
                h.write_f64(c.pid_gains.2);
                // c.seed intentionally excluded: the kernel overwrites it
                // with the trial seed, which the cache key hashes already.
            }
        }
    }
}

/// Which swap medium backs evictions (§IV / §V-D).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SwapChoice {
    /// SSD block device, ~7.5 ms loaded 4 KiB ops (paper measurement).
    Ssd,
    /// Compressed RAM, 20 µs read / 35 µs write of CPU time.
    Zram,
}

impl SwapChoice {
    /// Short label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            SwapChoice::Ssd => "ssd",
            SwapChoice::Zram => "zram",
        }
    }
}

/// Application-side cost parameters (the workload/fault path, as opposed
/// to the policy scan costs in [`CostModel`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AppCosts {
    /// Charged per resident MMU touch on top of the op's own compute.
    pub mem_access_ns: Nanos,
    /// Zero-fill (first touch) fault service.
    pub minor_fault_ns: Nanos,
    /// Software portion of a major fault (trap, lookup, swap bookkeeping).
    pub major_fault_ns: Nanos,
    /// Page-cache lookup for a resident fd access.
    pub fd_hit_ns: Nanos,
    /// Barrier arrival bookkeeping.
    pub barrier_ns: Nanos,
}

impl Default for AppCosts {
    fn default() -> Self {
        AppCosts {
            mem_access_ns: 20,
            minor_fault_ns: 1_500,
            major_fault_ns: 2_500,
            fd_hit_ns: 250,
            barrier_ns: 200,
        }
    }
}

/// Full system configuration for one experiment cell.
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// Replacement policy.
    pub policy: PolicyChoice,
    /// Swap medium.
    pub swap: SwapChoice,
    /// Memory capacity as a fraction of the workload footprint
    /// (the paper tests 0.5, 0.75, 0.9).
    pub capacity_ratio: f64,
    /// Simulated hardware threads (the paper's i7-8700: 12).
    pub cores: usize,
    /// Scheduler time slice.
    pub quantum: Nanos,
    /// Policy scan-cost model.
    pub costs: CostModel,
    /// Application/fault-path costs.
    pub app_costs: AppCosts,
    /// Pages kswapd reclaims per batch.
    pub kswapd_batch: u32,
    /// Pages direct reclaim frees per invocation.
    pub direct_batch: u32,
    /// SSD internal parallelism (flash channels).
    pub ssd_parallelism: usize,
    /// Cap on simulated time; a run exceeding it panics (guards against
    /// misconfigured thrashing loops).
    pub max_sim_time: Nanos,
    /// Background reclaim pauses while the swap device's write backlog
    /// exceeds this (Linux's writeback throttling); keeps swap-out storms
    /// from starving demand reads indefinitely.
    pub writeback_throttle_ns: Nanos,
    /// Page-compression factor: each simulated page stands for this many
    /// real pages, scaling page-table-scan costs accordingly (see
    /// [`CostModel::with_page_compression`]). Calibrated so the
    /// scan-overhead-to-fault-cost balance matches the paper's 12–16 GB
    /// footprints at our scaled-down page counts.
    pub page_compression: u64,
    /// Fault model (injection plan + kernel failure-handling knobs).
    pub faults: FaultConfig,
}

impl SystemConfig {
    /// A configuration with paper-calibrated defaults.
    pub fn new(policy: PolicyChoice, swap: SwapChoice) -> Self {
        SystemConfig {
            policy,
            swap,
            capacity_ratio: 0.5,
            cores: 12,
            quantum: MILLISECOND,
            costs: CostModel::default(),
            app_costs: AppCosts::default(),
            kswapd_batch: 32,
            direct_batch: 8,
            ssd_parallelism: 2,
            max_sim_time: 6 * 3600 * SECOND, // 6 simulated hours
            writeback_throttle_ns: 120 * MILLISECOND,
            page_compression: 200,
            faults: FaultConfig::none(),
        }
    }

    /// The scan-cost model with page compression applied.
    pub fn scaled_costs(&self) -> CostModel {
        self.costs.with_page_compression(self.page_compression)
    }

    /// Sets the capacity-to-footprint ratio.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < ratio <= 1`.
    pub fn capacity_ratio(mut self, ratio: f64) -> Self {
        assert!(ratio > 0.0 && ratio <= 1.0, "ratio must be in (0, 1]");
        self.capacity_ratio = ratio;
        self
    }

    /// Sets the core count.
    pub fn cores(mut self, cores: usize) -> Self {
        assert!(cores > 0);
        self.cores = cores;
        self
    }

    /// Sets the fault model.
    pub fn faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Physical frames for a workload of `footprint` pages: the capacity
    /// ratio plus kernel slack so watermarks don't eat into the ratio.
    pub fn frames_for(&self, footprint: u32) -> usize {
        let frames = (footprint as f64 * self.capacity_ratio) as usize;
        frames.max(64)
    }

    /// A stable, process-independent hash of every field that changes
    /// simulation behavior — the configuration half of the on-disk cell
    /// cache's content address.
    ///
    /// Unlike `std::hash::Hash` (randomly keyed SipHash), this value is
    /// identical across runs and hosts, and it covers the *resolved*
    /// configuration: two configs that build the same simulation hash
    /// equal, and flipping any semantically meaningful knob — an
    /// [`MgLruConfig`] field, a cost, a fault-plan parameter — changes it.
    pub fn stable_hash(&self) -> u64 {
        let mut h = StableHasher::new();
        self.policy.hash_into(&mut h);
        h.write_str(self.swap.label());
        h.write_f64(self.capacity_ratio);
        h.write_usize(self.cores);
        h.write_u64(self.quantum);
        let c = self.costs;
        h.write_u64(c.rmap_walk_ns);
        h.write_u64(c.pte_scan_ns);
        h.write_u64(c.region_check_ns);
        h.write_u64(c.list_op_ns);
        h.write_u64(c.evict_fixed_ns);
        let a = self.app_costs;
        h.write_u64(a.mem_access_ns);
        h.write_u64(a.minor_fault_ns);
        h.write_u64(a.major_fault_ns);
        h.write_u64(a.fd_hit_ns);
        h.write_u64(a.barrier_ns);
        h.write_u32(self.kswapd_batch);
        h.write_u32(self.direct_batch);
        h.write_usize(self.ssd_parallelism);
        h.write_u64(self.max_sim_time);
        h.write_u64(self.writeback_throttle_ns);
        h.write_u64(self.page_compression);
        self.faults.hash_into(&mut h);
        h.finish()
    }

    /// Human-readable cell id, e.g. `tpch/mglru/ssd/50%`.
    pub fn cell_label(&self, workload: &str) -> String {
        format!(
            "{workload}/{}/{}/{:.0}%",
            self.policy.label(),
            self.swap.label(),
            self.capacity_ratio * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_follow_ratio() {
        let c = SystemConfig::new(PolicyChoice::Clock, SwapChoice::Ssd).capacity_ratio(0.5);
        assert_eq!(c.frames_for(10_000), 5_000);
        let c = c.capacity_ratio(0.9);
        assert_eq!(c.frames_for(10_000), 9_000);
    }

    #[test]
    fn tiny_footprints_get_a_floor() {
        let c = SystemConfig::new(PolicyChoice::Clock, SwapChoice::Ssd).capacity_ratio(0.1);
        assert_eq!(c.frames_for(100), 64);
    }

    #[test]
    #[should_panic(expected = "ratio")]
    fn ratio_validation() {
        SystemConfig::new(PolicyChoice::Clock, SwapChoice::Ssd).capacity_ratio(0.0);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(PolicyChoice::MgLruScanNone.label(), "scan-none");
        assert_eq!(SwapChoice::Zram.label(), "zram");
        let c = SystemConfig::new(PolicyChoice::MgLruDefault, SwapChoice::Ssd);
        assert_eq!(c.cell_label("tpch"), "tpch/mglru/ssd/50%");
    }

    #[test]
    fn default_fault_config_is_inert() {
        let c = SystemConfig::new(PolicyChoice::Clock, SwapChoice::Ssd);
        assert!(c.faults.plan.is_noop());
        assert_eq!(c.faults.oom_after_stalls, None);
        assert_eq!(c.faults.zram_capacity_bytes, None);
        let f = FaultConfig::stalling_ssd();
        assert!(f.plan.has_device_faults());
        assert!(f.oom_after_stalls.is_some());
    }

    #[test]
    fn paper_set_has_six_policies() {
        assert_eq!(PolicyChoice::paper_set().len(), 6);
        assert_eq!(PolicyChoice::mglru_variants().len(), 5);
    }
}
