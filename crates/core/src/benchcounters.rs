//! Host-time fault/reclaim path counters for `repro bench`.
//!
//! The benchmark matrix tracks per-policy fault-path ns/op and
//! reclaim-batch ns/op. Those are *host* wall-clock measurements — exactly
//! what the determinism rules ban from the simulation proper — so they
//! live here in a feature-gated side channel:
//!
//! * Behind `--features bench-counters`, [`time_fault`] / [`time_reclaim`]
//!   return RAII timers that accumulate elapsed nanoseconds and op counts
//!   into thread-local cells, read out with [`take`].
//! * Without the feature (all figure runs), the timers are zero-sized
//!   no-ops and the hooks compile to nothing. The counters never feed back
//!   into `RunMetrics` or any simulated decision, so figure output is
//!   byte-identical either way — CI enforces this with a golden diff of
//!   `figures_default.txt` built both ways.
//!
//! Counters are thread-local on purpose: the sweep executor runs one trial
//! per worker thread, so a worker's `reset`/run/`take` window observes only
//! its own trial with no synchronization on the hot path.

/// Accumulated hot-path counters for one measurement window (one trial on
/// one thread). All zeros when `bench-counters` is compiled out.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Total host nanoseconds spent inside the page-fault path.
    pub fault_ns: u64,
    /// Number of timed fault-path entries.
    pub fault_ops: u64,
    /// Total host nanoseconds spent inside reclaim batches (kswapd slices
    /// and direct reclaim rounds: policy scan + eviction application).
    pub reclaim_ns: u64,
    /// Number of timed reclaim batches.
    pub reclaim_ops: u64,
}

impl CounterSnapshot {
    /// Mean fault-path nanoseconds per operation, or `None` with no ops.
    pub fn fault_ns_per_op(&self) -> Option<f64> {
        (self.fault_ops > 0).then(|| self.fault_ns as f64 / self.fault_ops as f64)
    }

    /// Mean reclaim-batch nanoseconds per batch, or `None` with no ops.
    pub fn reclaim_ns_per_op(&self) -> Option<f64> {
        (self.reclaim_ops > 0).then(|| self.reclaim_ns as f64 / self.reclaim_ops as f64)
    }
}

#[cfg(feature = "bench-counters")]
mod imp {
    use super::CounterSnapshot;
    use std::cell::Cell;
    // lint: allow(wall-clock) host-time benchmark counters, feature-gated out of figure runs and never fed back into the simulation
    use std::time::Instant;

    thread_local! {
        static FAULT_NS: Cell<u64> = const { Cell::new(0) };
        static FAULT_OPS: Cell<u64> = const { Cell::new(0) };
        static RECLAIM_NS: Cell<u64> = const { Cell::new(0) };
        static RECLAIM_OPS: Cell<u64> = const { Cell::new(0) };
    }

    /// RAII timer charging its lifetime to the fault-path counters.
    pub struct FaultTimer {
        // lint: allow(wall-clock) see module header: side-channel measurement only
        start: Instant,
    }

    impl Drop for FaultTimer {
        fn drop(&mut self) {
            let ns = self.start.elapsed().as_nanos() as u64;
            FAULT_NS.with(|c| c.set(c.get().saturating_add(ns)));
        }
    }

    /// RAII timer charging its lifetime to the reclaim-batch counters.
    pub struct ReclaimTimer {
        // lint: allow(wall-clock) see module header: side-channel measurement only
        start: Instant,
    }

    impl Drop for ReclaimTimer {
        fn drop(&mut self) {
            let ns = self.start.elapsed().as_nanos() as u64;
            RECLAIM_NS.with(|c| c.set(c.get().saturating_add(ns)));
        }
    }

    /// Starts timing one fault-path entry.
    pub fn time_fault() -> FaultTimer {
        FAULT_OPS.with(|c| c.set(c.get() + 1));
        FaultTimer {
            // lint: allow(wall-clock) see module header: side-channel measurement only
            start: Instant::now(),
        }
    }

    /// Starts timing one reclaim batch.
    pub fn time_reclaim() -> ReclaimTimer {
        RECLAIM_OPS.with(|c| c.set(c.get() + 1));
        ReclaimTimer {
            // lint: allow(wall-clock) see module header: side-channel measurement only
            start: Instant::now(),
        }
    }

    /// Zeroes this thread's counters (call before a measurement window).
    pub fn reset() {
        FAULT_NS.with(|c| c.set(0));
        FAULT_OPS.with(|c| c.set(0));
        RECLAIM_NS.with(|c| c.set(0));
        RECLAIM_OPS.with(|c| c.set(0));
    }

    /// Reads and zeroes this thread's counters (call after the window).
    pub fn take() -> CounterSnapshot {
        let snap = CounterSnapshot {
            fault_ns: FAULT_NS.with(Cell::get),
            fault_ops: FAULT_OPS.with(Cell::get),
            reclaim_ns: RECLAIM_NS.with(Cell::get),
            reclaim_ops: RECLAIM_OPS.with(Cell::get),
        };
        reset();
        snap
    }
}

#[cfg(not(feature = "bench-counters"))]
mod imp {
    use super::CounterSnapshot;

    /// No-op stand-in for the fault timer when counters are compiled out.
    pub struct FaultTimer;

    impl Drop for FaultTimer {
        fn drop(&mut self) {}
    }

    /// No-op stand-in for the reclaim timer when counters are compiled out.
    pub struct ReclaimTimer;

    impl Drop for ReclaimTimer {
        fn drop(&mut self) {}
    }

    /// No-op: counters are compiled out.
    #[inline(always)]
    pub fn time_fault() -> FaultTimer {
        FaultTimer
    }

    /// No-op: counters are compiled out.
    #[inline(always)]
    pub fn time_reclaim() -> ReclaimTimer {
        ReclaimTimer
    }

    /// No-op: counters are compiled out.
    #[inline(always)]
    pub fn reset() {}

    /// Always the zero snapshot: counters are compiled out.
    #[inline(always)]
    pub fn take() -> CounterSnapshot {
        CounterSnapshot::default()
    }
}

pub use imp::{reset, take, time_fault, time_reclaim, FaultTimer, ReclaimTimer};

/// Whether this build carries the hot-path counters (`bench-counters`).
pub const ENABLED: bool = cfg!(feature = "bench-counters");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_build_reads_all_zeros() {
        if ENABLED {
            return;
        }
        reset();
        {
            let _f = time_fault();
            let _r = time_reclaim();
        }
        assert_eq!(take(), CounterSnapshot::default());
    }

    #[test]
    fn enabled_build_counts_ops_and_time() {
        if !ENABLED {
            return;
        }
        reset();
        for _ in 0..3 {
            let t = time_fault();
            std::hint::black_box(0u64);
            drop(t);
        }
        {
            let _r = time_reclaim();
        }
        let snap = take();
        assert_eq!(snap.fault_ops, 3);
        assert_eq!(snap.reclaim_ops, 1);
        assert!(snap.fault_ns_per_op().is_some());
        // take() resets: a second read is empty.
        assert_eq!(take(), CounterSnapshot::default());
    }

    #[test]
    fn ns_per_op_is_none_without_ops() {
        let snap = CounterSnapshot::default();
        assert_eq!(snap.fault_ns_per_op(), None);
        assert_eq!(snap.reclaim_ns_per_op(), None);
    }
}
