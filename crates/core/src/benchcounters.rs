//! Host-time fault/reclaim path counters for `repro bench`.
//!
//! The benchmark matrix tracks per-policy fault-path ns/op and
//! reclaim-batch ns/op. Those are *host* wall-clock measurements — exactly
//! what the determinism rules ban from the simulation proper — so they
//! live here in a feature-gated side channel:
//!
//! * Behind `--features bench-counters`, [`time_fault`] / [`time_reclaim`]
//!   return RAII timers that accumulate elapsed nanoseconds and op counts
//!   into thread-local cells, read out with [`take`].
//! * Without the feature (all figure runs), the timers are zero-sized
//!   no-ops and the hooks compile to nothing. The counters never feed back
//!   into `RunMetrics` or any simulated decision, so figure output is
//!   byte-identical either way — CI enforces this with a golden diff of
//!   `figures_default.txt` built both ways.
//!
//! Counters are thread-local on purpose: the sweep executor runs one trial
//! per worker thread, so a worker's `reset`/run/`take` window observes only
//! its own trial with no synchronization on the hot path.

/// Accumulated hot-path counters for one measurement window (one trial on
/// one thread). All zeros when `bench-counters` is compiled out.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Total host nanoseconds spent inside the page-fault path.
    pub fault_ns: u64,
    /// Number of timed fault-path entries.
    pub fault_ops: u64,
    /// Total host nanoseconds spent inside reclaim batches (kswapd slices
    /// and direct reclaim rounds: policy scan + eviction application).
    pub reclaim_ns: u64,
    /// Number of timed reclaim batches.
    pub reclaim_ops: u64,
    /// Total host nanoseconds inside the aging walk's region scans
    /// ([`MemView::scan_region`](pagesim_policy::MemView::scan_region)).
    pub aging_scan_ns: u64,
    /// PTEs examined by the timed aging-walk region scans.
    pub aging_scan_ptes: u64,
    /// Total host nanoseconds inside the eviction scan's spatial
    /// line-mask probes.
    pub evict_scan_ns: u64,
    /// PTEs examined by the timed eviction line scans.
    pub evict_scan_ptes: u64,
}

impl CounterSnapshot {
    /// Mean fault-path nanoseconds per operation, or `None` with no ops.
    pub fn fault_ns_per_op(&self) -> Option<f64> {
        (self.fault_ops > 0).then(|| self.fault_ns as f64 / self.fault_ops as f64)
    }

    /// Mean reclaim-batch nanoseconds per batch, or `None` with no ops.
    pub fn reclaim_ns_per_op(&self) -> Option<f64> {
        (self.reclaim_ops > 0).then(|| self.reclaim_ns as f64 / self.reclaim_ops as f64)
    }

    /// Mean aging-walk host nanoseconds per PTE examined, or `None` when
    /// no aging scans ran. The examined count is simulation-deterministic,
    /// so before/after builds divide by the same denominator.
    pub fn aging_scan_ns_per_pte(&self) -> Option<f64> {
        (self.aging_scan_ptes > 0).then(|| self.aging_scan_ns as f64 / self.aging_scan_ptes as f64)
    }

    /// Mean eviction-scan host nanoseconds per PTE examined, or `None`
    /// when no spatial line scans ran.
    pub fn evict_scan_ns_per_pte(&self) -> Option<f64> {
        (self.evict_scan_ptes > 0).then(|| self.evict_scan_ns as f64 / self.evict_scan_ptes as f64)
    }
}

#[cfg(feature = "bench-counters")]
mod imp {
    use super::CounterSnapshot;
    use std::cell::Cell;
    // lint: allow(wall-clock) host-time benchmark counters, feature-gated out of figure runs and never fed back into the simulation
    use std::time::Instant;

    thread_local! {
        static FAULT_NS: Cell<u64> = const { Cell::new(0) };
        static FAULT_OPS: Cell<u64> = const { Cell::new(0) };
        static RECLAIM_NS: Cell<u64> = const { Cell::new(0) };
        static RECLAIM_OPS: Cell<u64> = const { Cell::new(0) };
        static AGING_SCAN_NS: Cell<u64> = const { Cell::new(0) };
        static AGING_SCAN_PTES: Cell<u64> = const { Cell::new(0) };
        static EVICT_SCAN_NS: Cell<u64> = const { Cell::new(0) };
        static EVICT_SCAN_PTES: Cell<u64> = const { Cell::new(0) };
    }

    /// RAII timer charging its lifetime to the fault-path counters.
    pub struct FaultTimer {
        // lint: allow(wall-clock) see module header: side-channel measurement only
        start: Instant,
    }

    impl Drop for FaultTimer {
        fn drop(&mut self) {
            let ns = self.start.elapsed().as_nanos() as u64;
            FAULT_NS.with(|c| c.set(c.get().saturating_add(ns)));
        }
    }

    /// RAII timer charging its lifetime to the reclaim-batch counters.
    pub struct ReclaimTimer {
        // lint: allow(wall-clock) see module header: side-channel measurement only
        start: Instant,
    }

    impl Drop for ReclaimTimer {
        fn drop(&mut self) {
            let ns = self.start.elapsed().as_nanos() as u64;
            RECLAIM_NS.with(|c| c.set(c.get().saturating_add(ns)));
        }
    }

    /// Starts timing one fault-path entry.
    pub fn time_fault() -> FaultTimer {
        FAULT_OPS.with(|c| c.set(c.get() + 1));
        FaultTimer {
            // lint: allow(wall-clock) see module header: side-channel measurement only
            start: Instant::now(),
        }
    }

    /// Starts timing one reclaim batch.
    pub fn time_reclaim() -> ReclaimTimer {
        RECLAIM_OPS.with(|c| c.set(c.get() + 1));
        ReclaimTimer {
            // lint: allow(wall-clock) see module header: side-channel measurement only
            start: Instant::now(),
        }
    }

    /// RAII timer charging its lifetime to the aging-scan counters.
    pub struct AgingScanTimer {
        // lint: allow(wall-clock) see module header: side-channel measurement only
        start: Instant,
    }

    impl Drop for AgingScanTimer {
        fn drop(&mut self) {
            let ns = self.start.elapsed().as_nanos() as u64;
            AGING_SCAN_NS.with(|c| c.set(c.get().saturating_add(ns)));
        }
    }

    /// RAII timer charging its lifetime to the eviction-scan counters.
    pub struct EvictScanTimer {
        // lint: allow(wall-clock) see module header: side-channel measurement only
        start: Instant,
    }

    impl Drop for EvictScanTimer {
        fn drop(&mut self) {
            let ns = self.start.elapsed().as_nanos() as u64;
            EVICT_SCAN_NS.with(|c| c.set(c.get().saturating_add(ns)));
        }
    }

    /// Starts timing one aging-walk region scan.
    pub fn time_aging_scan() -> AgingScanTimer {
        AgingScanTimer {
            // lint: allow(wall-clock) see module header: side-channel measurement only
            start: Instant::now(),
        }
    }

    /// Credits PTEs examined by a timed aging-walk region scan.
    pub fn add_aging_scan_ptes(n: u64) {
        AGING_SCAN_PTES.with(|c| c.set(c.get().saturating_add(n)));
    }

    /// Starts timing one eviction spatial line scan.
    pub fn time_evict_scan() -> EvictScanTimer {
        EvictScanTimer {
            // lint: allow(wall-clock) see module header: side-channel measurement only
            start: Instant::now(),
        }
    }

    /// Credits PTEs examined by a timed eviction line scan.
    pub fn add_evict_scan_ptes(n: u64) {
        EVICT_SCAN_PTES.with(|c| c.set(c.get().saturating_add(n)));
    }

    /// Zeroes this thread's counters (call before a measurement window).
    pub fn reset() {
        FAULT_NS.with(|c| c.set(0));
        FAULT_OPS.with(|c| c.set(0));
        RECLAIM_NS.with(|c| c.set(0));
        RECLAIM_OPS.with(|c| c.set(0));
        AGING_SCAN_NS.with(|c| c.set(0));
        AGING_SCAN_PTES.with(|c| c.set(0));
        EVICT_SCAN_NS.with(|c| c.set(0));
        EVICT_SCAN_PTES.with(|c| c.set(0));
    }

    /// Reads and zeroes this thread's counters (call after the window).
    pub fn take() -> CounterSnapshot {
        let snap = CounterSnapshot {
            fault_ns: FAULT_NS.with(Cell::get),
            fault_ops: FAULT_OPS.with(Cell::get),
            reclaim_ns: RECLAIM_NS.with(Cell::get),
            reclaim_ops: RECLAIM_OPS.with(Cell::get),
            aging_scan_ns: AGING_SCAN_NS.with(Cell::get),
            aging_scan_ptes: AGING_SCAN_PTES.with(Cell::get),
            evict_scan_ns: EVICT_SCAN_NS.with(Cell::get),
            evict_scan_ptes: EVICT_SCAN_PTES.with(Cell::get),
        };
        reset();
        snap
    }
}

#[cfg(not(feature = "bench-counters"))]
mod imp {
    use super::CounterSnapshot;

    /// No-op stand-in for the fault timer when counters are compiled out.
    pub struct FaultTimer;

    impl Drop for FaultTimer {
        fn drop(&mut self) {}
    }

    /// No-op stand-in for the reclaim timer when counters are compiled out.
    pub struct ReclaimTimer;

    impl Drop for ReclaimTimer {
        fn drop(&mut self) {}
    }

    /// No-op stand-in for the aging-scan timer when counters are compiled out.
    pub struct AgingScanTimer;

    impl Drop for AgingScanTimer {
        fn drop(&mut self) {}
    }

    /// No-op stand-in for the evict-scan timer when counters are compiled out.
    pub struct EvictScanTimer;

    impl Drop for EvictScanTimer {
        fn drop(&mut self) {}
    }

    /// No-op: counters are compiled out.
    #[inline(always)]
    pub fn time_fault() -> FaultTimer {
        FaultTimer
    }

    /// No-op: counters are compiled out.
    #[inline(always)]
    pub fn time_reclaim() -> ReclaimTimer {
        ReclaimTimer
    }

    /// No-op: counters are compiled out.
    #[inline(always)]
    pub fn time_aging_scan() -> AgingScanTimer {
        AgingScanTimer
    }

    /// No-op: counters are compiled out.
    #[inline(always)]
    pub fn add_aging_scan_ptes(_n: u64) {}

    /// No-op: counters are compiled out.
    #[inline(always)]
    pub fn time_evict_scan() -> EvictScanTimer {
        EvictScanTimer
    }

    /// No-op: counters are compiled out.
    #[inline(always)]
    pub fn add_evict_scan_ptes(_n: u64) {}

    /// No-op: counters are compiled out.
    #[inline(always)]
    pub fn reset() {}

    /// Always the zero snapshot: counters are compiled out.
    #[inline(always)]
    pub fn take() -> CounterSnapshot {
        CounterSnapshot::default()
    }
}

pub use imp::{
    add_aging_scan_ptes, add_evict_scan_ptes, reset, take, time_aging_scan, time_evict_scan,
    time_fault, time_reclaim, AgingScanTimer, EvictScanTimer, FaultTimer, ReclaimTimer,
};

/// Whether this build carries the hot-path counters (`bench-counters`).
pub const ENABLED: bool = cfg!(feature = "bench-counters");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_build_reads_all_zeros() {
        if ENABLED {
            return;
        }
        reset();
        {
            let _f = time_fault();
            let _r = time_reclaim();
        }
        assert_eq!(take(), CounterSnapshot::default());
    }

    #[test]
    fn enabled_build_counts_ops_and_time() {
        if !ENABLED {
            return;
        }
        reset();
        for _ in 0..3 {
            let t = time_fault();
            std::hint::black_box(0u64);
            drop(t);
        }
        {
            let _r = time_reclaim();
        }
        let snap = take();
        assert_eq!(snap.fault_ops, 3);
        assert_eq!(snap.reclaim_ops, 1);
        assert!(snap.fault_ns_per_op().is_some());
        // take() resets: a second read is empty.
        assert_eq!(take(), CounterSnapshot::default());
    }

    #[test]
    fn ns_per_op_is_none_without_ops() {
        let snap = CounterSnapshot::default();
        assert_eq!(snap.fault_ns_per_op(), None);
        assert_eq!(snap.reclaim_ns_per_op(), None);
        assert_eq!(snap.aging_scan_ns_per_pte(), None);
        assert_eq!(snap.evict_scan_ns_per_pte(), None);
    }

    #[test]
    fn scan_counters_divide_by_examined_ptes() {
        if !ENABLED {
            reset();
            let _a = time_aging_scan();
            let _e = time_evict_scan();
            add_aging_scan_ptes(512);
            add_evict_scan_ptes(8);
            drop((_a, _e));
            assert_eq!(take(), CounterSnapshot::default());
            return;
        }
        reset();
        {
            let _t = time_aging_scan();
            std::hint::black_box(0u64);
        }
        add_aging_scan_ptes(512);
        {
            let _t = time_evict_scan();
            std::hint::black_box(0u64);
        }
        add_evict_scan_ptes(8);
        let snap = take();
        assert_eq!(snap.aging_scan_ptes, 512);
        assert_eq!(snap.evict_scan_ptes, 8);
        assert!(snap.aging_scan_ns_per_pte().is_some());
        assert!(snap.evict_scan_ns_per_pte().is_some());
        assert_eq!(take(), CounterSnapshot::default());
    }
}
