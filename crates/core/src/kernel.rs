//! The simulated kernel: MMU touch path, demand faults, swap I/O,
//! background reclaim (kswapd analog), and the MG-LRU aging thread, all
//! scheduled over a fixed number of cores.
//!
//! ## Execution model
//!
//! The kernel is a discrete-event simulation. When a thread is dispatched
//! onto a core it runs a *slice*: ops are consumed from its access stream
//! until the time-slice budget is spent, the thread blocks (fault I/O,
//! barrier, frame starvation), or it finishes. Slice effects are applied
//! at dispatch using the slice's *virtual* timestamps (`now + used`);
//! cross-thread interleaving is therefore accurate to within one quantum,
//! which is far below every latency of interest (SSD ops are 7.5 ms).
//!
//! ## Fault path fidelity
//!
//! * First touches are minor faults: zero-fill, mapped dirty (the page
//!   inherits the contents the application wrote while loading its data).
//! * Swap-ins are major faults: software overhead plus device read. ZRAM
//!   reads are CPU work on the faulting thread (decompression); SSD reads
//!   queue on the device and block the thread.
//! * A clean resident page keeps its swap-slot *backing* (swap-cache
//!   analog) and can be evicted again without a write; dirtying the page
//!   invalidates the backing.
//! * Evicting a dirty page pins its frame until the write-back completes —
//!   under thrashing, demand faults end up waiting for swap-out, the tail
//!   mechanism of §VI-A.
//! * File-backed pages are read from (and written back to) the device on
//!   demand; clean file pages are simply dropped. The backing file lives
//!   on the same simulated device as swap (documented substitution).
//!
//! ## Failure model
//!
//! With a non-empty [`FaultConfig`](crate::config::FaultConfig) the swap
//! device can reject or stall operations and the kernel reacts the way
//! Linux does:
//!
//! * A failed swap-in is retried with exponential backoff; a permanent
//!   device error (or exhausting the retry budget) kills the faulting
//!   task — the SIGBUS path — releasing its frames.
//! * A failed swap-out aborts the eviction: the victim page stays
//!   resident and is handed back to the policy.
//! * A long streak of starved allocations invokes an OOM killer that
//!   picks the largest-RSS task (first-touch frame attribution), kills
//!   it, and frees its frames.
//! * Memory-pressure steps inflate a balloon that grabs free frames for a
//!   while, forcing reclaim to run against a shrunken pool.
//!
//! With the default empty plan none of these paths execute and the
//! simulation is bit-identical to the fault-free model.

// Ordered containers only: kernel state must never expose hash-iteration
// order to the simulation (enforced by `pagesim-lint` rule L1).
use std::collections::{BTreeMap, BTreeSet};

use pagesim_engine::faults::IoError;
use pagesim_engine::rng::derive_seed;
use pagesim_engine::{
    BarrierSet, DispatchDecision, EventQueue, FaultInjector, Nanos, Scheduler, SimTime,
    ThreadClass, ThreadId, MICROSECOND, MILLISECOND,
};
use pagesim_mem::{
    AddressSpace, AsId, FrameId, FrameState, PageArena, PageKey, PhysMem, Vpn, Watermarks,
};
use pagesim_policy::{ClockLru, MgLru, Policy};
use pagesim_swap::{SsdDevice, SwapDevice, SwapSlot, ZramDevice};
#[cfg(feature = "trace")]
use pagesim_trace::{CoreOcc, Sample, ThreadKind, TraceEvent, Tracer};
use pagesim_workloads::{AccessStream, Op, ReqClass, Workload};

use crate::config::{SwapChoice, SystemConfig};
use crate::mem_state::MemState;
use crate::metrics::RunMetrics;
use crate::workingset::ShadowArena;

/// Records a trace event when a tracer is attached and enabled. Expands
/// to nothing without the `trace` feature, so release figure builds carry
/// no tracing code at all; with the feature on but no tracer attached (or
/// a disabled one) the cost is one branch.
#[cfg(feature = "trace")]
macro_rules! trace_event {
    ($self:expr, $t_ns:expr, $ev:expr) => {
        if let Some(tr) = $self.tracer.as_deref_mut() {
            if tr.is_enabled() {
                tr.event($t_ns, $ev);
            }
        }
    };
}
#[cfg(not(feature = "trace"))]
macro_rules! trace_event {
    ($self:expr, $t_ns:expr, $ev:expr) => {};
}

/// Owner key recorded for balloon-held frames (outside every address
/// space; the arena never grows anywhere near `u32::MAX` pages).
const BALLOON_KEY: PageKey = PageKey::MAX;

/// A condition that ends (or degrades) a simulation without a panic.
///
/// Simulation-state violations used to abort the whole experiment batch
/// via `expect`/`assert`; they now propagate into
/// [`RunMetrics::error`](crate::RunMetrics) so one bad cell cannot take
/// down a figure sweep.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SimError {
    /// A `RequestEnd` op arrived with no `RequestStart` in flight.
    RequestWithoutStart,
    /// A `RequestStart` op arrived while another request was open.
    NestedRequest,
    /// No events remained while application threads were still live.
    Deadlock,
    /// The simulation exceeded `config.max_sim_time` (a guard against
    /// thrashing loops that make no forward progress).
    SimTimeExceeded,
}

impl SimError {
    /// Stable machine-readable name, used by the cell-cache codec.
    pub fn name(&self) -> &'static str {
        match self {
            SimError::RequestWithoutStart => "request-without-start",
            SimError::NestedRequest => "nested-request",
            SimError::Deadlock => "deadlock",
            SimError::SimTimeExceeded => "sim-time-exceeded",
        }
    }

    /// Parses a [`SimError::name`] string back.
    pub fn from_name(s: &str) -> Option<SimError> {
        Some(match s {
            "request-without-start" => SimError::RequestWithoutStart,
            "nested-request" => SimError::NestedRequest,
            "deadlock" => SimError::Deadlock,
            "sim-time-exceeded" => SimError::SimTimeExceeded,
            _ => return None,
        })
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::RequestWithoutStart => write!(f, "RequestEnd without RequestStart"),
            SimError::NestedRequest => write!(f, "nested RequestStart"),
            SimError::Deadlock => write!(f, "deadlock: no events, app threads live"),
            SimError::SimTimeExceeded => write!(f, "simulation exceeded max_sim_time"),
        }
    }
}

#[derive(Debug)]
enum Event {
    SliceEnd {
        core: usize,
        tid: ThreadId,
        used: Nanos,
        decision: DispatchDecision,
    },
    IoDone {
        tid: ThreadId,
        key: PageKey,
        frame: FrameId,
        slot: Option<SwapSlot>,
        write: bool,
        fd: bool,
    },
    FrameFree {
        frame: FrameId,
    },
    Wake {
        tid: ThreadId,
    },
    KswapdRetry,
    /// A memory-pressure step begins: the balloon inflates.
    PressureOn {
        idx: usize,
    },
    /// A memory-pressure step ends: the balloon deflates.
    PressureOff {
        idx: usize,
    },
}

enum ThreadBody {
    App {
        stream: Box<dyn AccessStream>,
        pending: Option<Op>,
        request: Option<(ReqClass, SimTime, bool)>,
    },
    Kswapd,
    Aging,
}

enum SliceOutcome {
    Preempted,
    Blocked,
    Finished,
}

impl From<&SliceOutcome> for DispatchDecision {
    fn from(o: &SliceOutcome) -> DispatchDecision {
        match o {
            SliceOutcome::Preempted => DispatchDecision::Preempted,
            SliceOutcome::Blocked => DispatchDecision::Blocked,
            SliceOutcome::Finished => DispatchDecision::Finished,
        }
    }
}

/// The simulated system. One [`run`](Kernel::run) = one workload execution.
pub struct Kernel {
    cfg: SystemConfig,
    now: SimTime,
    events: EventQueue<Event>,
    sched: Scheduler,
    barriers: BarrierSet,
    mem: MemState,
    swap: Box<dyn SwapDevice>,
    policy: Box<dyn Policy>,
    bodies: Vec<ThreadBody>,
    app_live: usize,
    finish_time: SimTime,
    kswapd: ThreadId,
    kswapd_asleep: bool,
    kswapd_retry_pending: bool,
    aging: ThreadId,
    aging_asleep: bool,
    /// Write-back completion time per in-flight slot (reads must wait).
    slot_ready: BTreeMap<SwapSlot, SimTime>,
    /// Faults already in flight per page (page-lock analog): later
    /// faulters on the same page wait for the first I/O instead of
    /// issuing their own.
    inflight: BTreeMap<PageKey, Vec<ThreadId>>,
    /// First-touch frame attribution: which app thread faulted each frame
    /// in. Drives the OOM killer's RSS accounting; cleared at every free.
    frame_owner: Vec<Option<ThreadId>>,
    /// Threads killed by the OOM killer or an unrecoverable I/O error;
    /// they retire at their next dispatch.
    killed: Vec<bool>,
    /// Per-thread RSS scratch for the OOM victim scan, reused across
    /// invocations so the stall path never allocates.
    oom_rss: Vec<u64>,
    /// Consecutive failed swap-in attempts per thread (exponential
    /// backoff); reset on a successful read submission.
    retry_attempts: Vec<u32>,
    /// Consecutive starved allocations across all threads; the OOM
    /// trigger. Reset whenever an allocation succeeds.
    stall_streak: u32,
    /// Frames referenced by an in-flight `IoDone` event: the OOM killer
    /// must not free them (the completion handler will).
    io_pinned: BTreeSet<FrameId>,
    /// Frames held by each active pressure step's balloon.
    balloon: Vec<Vec<FrameId>>,
    /// Shadow entries for evicted pages (`workingset.c` analog): one
    /// preallocated slot per page, recorded on eviction and consumed on
    /// refault to yield the refault distance. Purely observational —
    /// never feeds back into policy or timing.
    shadow: ShadowArena,
    metrics: RunMetrics,
    /// Telemetry collector, attached via [`Kernel::set_tracer`]. Boxed so
    /// the untraced kernel pays one pointer of space; `None` (the
    /// default) short-circuits every hook.
    #[cfg(feature = "trace")]
    tracer: Option<Box<Tracer>>,
    /// Quiesce-point counter for sampling the O(pages) sanitize sweep at
    /// paper-native footprints (a `Cell` because the checker is `&self`).
    #[cfg(feature = "sanitize")]
    sanitize_tick: std::cell::Cell<u64>,
}

impl Kernel {
    /// Builds a system for `workload` under `config`, seeded for one trial.
    pub fn build(config: &SystemConfig, workload: &dyn Workload, seed: u64) -> Kernel {
        let specs = workload.spaces();
        let mut arena = PageArena::new();
        let mut spaces = Vec::with_capacity(specs.len());
        for (i, spec) in specs.iter().enumerate() {
            let space = AddressSpace::new(AsId(i as u16), spec.pages, &mut arena);
            let base = space.base_key();
            for a in &spec.annotations {
                if a.file_backed {
                    arena.set_file_backed(base + a.start, a.count);
                }
                arena.set_entropy(base + a.start, a.count, a.entropy);
            }
            spaces.push(space);
        }
        let footprint: u32 = specs.iter().map(|s| s.pages).sum();
        let frames = config.frames_for(footprint);
        let phys = PhysMem::new(frames, Watermarks::for_capacity(frames));
        let mem = MemState::new(spaces, arena, phys);

        let total_pages = mem.arena.len() as u32;
        // `PolicyChoice::resolved_mglru` is the single source of truth for
        // what each choice builds; `SystemConfig::stable_hash` (the cell
        // cache key) hashes the same resolution, so a cache hit implies an
        // identical policy construction here.
        let policy: Box<dyn Policy> = match config.policy.resolved_mglru() {
            None => Box::new(ClockLru::new(total_pages, config.scaled_costs())),
            Some(mut c) => {
                c.seed = seed;
                Box::new(MgLru::new(total_pages, c, config.scaled_costs()))
            }
        };

        // Devices carry a fault injector only when the plan can touch
        // them: a plain device stays on the branch-free fast path and the
        // simulation is bit-identical to the fault-free build.
        let device_faults = config
            .faults
            .plan
            .has_device_faults()
            .then(|| FaultInjector::new(config.faults.plan.clone(), derive_seed(seed, "fault-injection")));
        let swap: Box<dyn SwapDevice> = match config.swap {
            SwapChoice::Ssd => {
                let mut d = SsdDevice::new(
                    7 * MILLISECOND + 500 * MICROSECOND,
                    7 * MILLISECOND + 500 * MICROSECOND,
                    config.ssd_parallelism,
                );
                if let Some(inj) = device_faults {
                    d = d.with_faults(inj);
                }
                Box::new(d)
            }
            SwapChoice::Zram => {
                let mut d = ZramDevice::with_paper_costs();
                if let Some(bytes) = config.faults.zram_capacity_bytes {
                    d = d.with_capacity(bytes);
                }
                if let Some(inj) = device_faults {
                    d = d.with_faults(inj);
                }
                Box::new(d)
            }
        };

        let mut sched = Scheduler::new(config.cores, config.quantum);
        let mut bodies = Vec::new();
        let mut barriers = BarrierSet::new();
        for parties in workload.barriers() {
            barriers.create(parties);
        }
        let streams = workload.streams(seed);
        let app_live = streams.len();
        for stream in streams {
            let tid = sched.spawn(ThreadClass::App);
            debug_assert_eq!(tid.0 as usize, bodies.len());
            bodies.push(ThreadBody::App {
                stream,
                pending: None,
                request: None,
            });
            sched.make_runnable(tid);
        }
        let kswapd = sched.spawn(ThreadClass::Kernel);
        bodies.push(ThreadBody::Kswapd);
        let aging = sched.spawn(ThreadClass::Kernel);
        bodies.push(ThreadBody::Aging);

        let metrics = RunMetrics {
            footprint_pages: footprint,
            capacity_frames: frames as u32,
            ..RunMetrics::default()
        };

        let mut events = EventQueue::new();
        let pressure = &config.faults.plan.pressure;
        for (idx, step) in pressure.iter().enumerate() {
            events.push(SimTime::from_ns(step.at), Event::PressureOn { idx });
        }

        let thread_count = bodies.len();
        Kernel {
            cfg: config.clone(),
            now: SimTime::ZERO,
            events,
            sched,
            barriers,
            mem,
            swap,
            policy,
            bodies,
            app_live,
            finish_time: SimTime::ZERO,
            kswapd,
            kswapd_asleep: true,
            kswapd_retry_pending: false,
            aging,
            aging_asleep: true,
            slot_ready: BTreeMap::new(),
            inflight: BTreeMap::new(),
            frame_owner: vec![None; frames],
            killed: vec![false; thread_count],
            oom_rss: vec![0; thread_count],
            retry_attempts: vec![0; thread_count],
            stall_streak: 0,
            io_pinned: BTreeSet::new(),
            balloon: vec![Vec::new(); pressure.len()],
            shadow: ShadowArena::new(total_pages as usize),
            metrics,
            #[cfg(feature = "trace")]
            tracer: None,
            #[cfg(feature = "sanitize")]
            sanitize_tick: std::cell::Cell::new(0),
        }
    }

    /// Attaches a telemetry collector. Tracing hooks never feed back into
    /// the simulation: a traced run produces the same `RunMetrics` as an
    /// untraced one.
    #[cfg(feature = "trace")]
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(Box::new(tracer));
    }

    /// Runs the workload to completion and returns the collected metrics.
    ///
    /// Simulation-state violations (deadlock, exceeding
    /// `config.max_sim_time`, malformed request streams) are recorded in
    /// [`RunMetrics::error`] instead of panicking.
    pub fn run(mut self) -> RunMetrics {
        self.run_loop();
        self.finalize()
    }

    /// Runs the workload like [`run`](Kernel::run) and additionally hands
    /// back the attached tracer (if any) with its collected samples and
    /// events.
    #[cfg(feature = "trace")]
    pub fn run_traced(mut self) -> (RunMetrics, Option<Box<Tracer>>) {
        self.run_loop();
        let tracer = self.tracer.take();
        (self.finalize(), tracer)
    }

    fn run_loop(&mut self) {
        loop {
            while let Some((core, tid)) = self.sched.try_dispatch() {
                let (used, outcome) = self.run_slice(tid);
                let decision = DispatchDecision::from(&outcome);
                self.events.push(
                    self.now + used,
                    Event::SliceEnd {
                        core,
                        tid,
                        used,
                        decision,
                    },
                );
            }
            let Some((t, ev)) = self.events.pop() else {
                if self.app_live != 0 {
                    self.metrics.error.get_or_insert(SimError::Deadlock);
                    self.finish_time = self.finish_time.max(self.now);
                }
                break;
            };
            if t.as_ns() > self.cfg.max_sim_time {
                self.metrics.error.get_or_insert(SimError::SimTimeExceeded);
                self.finish_time = self.finish_time.max(self.now);
                break;
            }
            // Emit any sample boundaries due before this event: simulation
            // state only changes at events, so the pre-event snapshot is
            // exactly the state that held at each boundary.
            #[cfg(feature = "trace")]
            self.pump_samples(t.as_ns());
            self.now = t;
            self.handle_event(ev);
            if self.app_live == 0 {
                break;
            }
        }
    }

    /// Drains sample boundaries at or before `upto_ns`, snapshotting the
    /// current gauges for each.
    #[cfg(feature = "trace")]
    fn pump_samples(&mut self, upto_ns: u64) {
        while let Some(t_ns) = self
            .tracer
            .as_ref()
            .and_then(|tr| tr.next_boundary(upto_ns))
        {
            let sample = self.snapshot_sample(t_ns);
            if let Some(tr) = self.tracer.as_deref_mut() {
                tr.push_sample(sample);
            }
        }
    }

    #[cfg(feature = "trace")]
    fn snapshot_sample(&self, t_ns: u64) -> Sample {
        let cores = (0..self.cfg.cores)
            .map(|core| match self.sched.running_on(core) {
                None => CoreOcc::Idle,
                Some(tid) if tid == self.kswapd => CoreOcc::Kswapd,
                Some(tid) if tid == self.aging => CoreOcc::Aging,
                Some(tid) => CoreOcc::App(tid.0),
            })
            .collect();
        Sample {
            t_ns,
            major_faults: self.metrics.major_faults,
            refaults: self.tracer.as_ref().map(|tr| tr.refaults()).unwrap_or(0),
            evictions: self.metrics.evictions,
            direct_reclaims: self.metrics.direct_reclaims,
            kswapd_batches: self.metrics.kswapd_batches,
            free_frames: self.mem.phys.free_frames() as u64,
            writeback_frames: self.mem.phys.writeback_frames() as u64,
            gens: self.policy.occupancy(),
            cores,
            ws_refault: self.metrics.workingset_refault,
            ws_activate: self.metrics.workingset_activate,
            ws_restore: self.metrics.workingset_restore,
            lru_gen: {
                let mut dump = String::new();
                self.policy.introspect(&mut dump);
                dump
            },
        }
    }

    fn finalize(mut self) -> RunMetrics {
        #[cfg(feature = "sanitize")]
        self.check_invariants_full();
        self.metrics.runtime_ns = self.finish_time.as_ns();
        self.metrics.policy = self.policy.stats();
        self.metrics.swap_stats = self.swap.stats();
        self.metrics.shadow_entries = self.shadow.len();
        self.policy.introspect(&mut self.metrics.lru_gen);
        let s = self.sched.stats();
        self.metrics.app_cpu_ns = s.app_cpu;
        self.metrics.kernel_cpu_ns = s.kernel_cpu;
        self.metrics.swap_used_bytes = self.swap.used_bytes();
        self.metrics
    }

    fn handle_event(&mut self, ev: Event) {
        match ev {
            Event::SliceEnd {
                core,
                tid,
                used,
                decision,
            } => {
                #[cfg(feature = "trace")]
                if used > 0 {
                    trace_event!(
                        self,
                        self.now.as_ns() - used,
                        TraceEvent::Slice {
                            core: core as u32,
                            tid: tid.0,
                            kind: if tid == self.kswapd {
                                ThreadKind::Kswapd
                            } else if tid == self.aging {
                                ThreadKind::Aging
                            } else {
                                ThreadKind::App
                            },
                            dur_ns: used,
                        }
                    );
                }
                self.sched.slice_done(core, tid, decision, used);
                if decision == DispatchDecision::Finished
                    && matches!(self.bodies[tid.0 as usize], ThreadBody::App { .. })
                {
                    self.app_live -= 1;
                    self.finish_time = self.finish_time.max(self.now);
                }
            }
            Event::IoDone {
                tid,
                key,
                frame,
                slot,
                write,
                fd,
            } => {
                self.io_pinned.remove(&frame);
                if self.killed[tid.0 as usize] || self.sched.is_finished(tid) {
                    // The faulting thread died while its I/O was in
                    // flight: drop the frame, leave the page out.
                    self.frame_owner[frame as usize] = None;
                    if self.mem.phys.state(frame) == FrameState::InUse {
                        self.mem.phys.free(frame);
                    }
                    self.wake_inflight_waiters(key);
                    return;
                }
                self.complete_major_fault(tid, key, frame, slot, write, fd);
                trace_event!(
                    self,
                    self.now.as_ns(),
                    TraceEvent::FaultEnd {
                        tid: tid.0,
                        key: key as u64,
                    }
                );
                self.sched.make_runnable(tid);
                // Release the page lock: threads that faulted on the same
                // page retry their access and hit.
                self.wake_inflight_waiters(key);
            }
            Event::FrameFree { frame } => {
                self.mem.phys.writeback_done(frame);
            }
            Event::Wake { tid } => {
                if !self.sched.is_finished(tid) {
                    self.sched.make_runnable(tid);
                }
            }
            Event::KswapdRetry => {
                self.kswapd_retry_pending = false;
                if self.kswapd_asleep && self.mem.phys.below_low() {
                    self.kswapd_asleep = false;
                    self.sched.make_runnable(self.kswapd);
                }
            }
            Event::PressureOn { idx } => self.pressure_on(idx),
            Event::PressureOff { idx } => self.pressure_off(idx),
        }
    }

    fn wake_inflight_waiters(&mut self, key: PageKey) {
        if let Some(waiters) = self.inflight.remove(&key) {
            for w in waiters {
                if !self.sched.is_finished(w) {
                    self.sched.make_runnable(w);
                }
            }
        }
    }

    // ---------------------------------------------------------------
    // Memory-pressure balloon
    // ---------------------------------------------------------------

    fn pressure_on(&mut self, idx: usize) {
        let step = self.cfg.faults.plan.pressure[idx];
        let want = (self.mem.phys.capacity() as f64 * step.frac) as usize;
        let mut taken = Vec::new();
        // `allocate` refuses below the min watermark, so the balloon can
        // never consume the reserve that direct reclaim depends on.
        for _ in 0..want {
            let Some(f) = self.mem.phys.allocate(BALLOON_KEY) else {
                break;
            };
            self.frame_owner[f as usize] = None;
            taken.push(f);
        }
        self.metrics.pressure_frames_taken += taken.len() as u64;
        self.balloon[idx] = taken;
        self.events
            .push(self.now + step.duration, Event::PressureOff { idx });
        self.maybe_wake_kswapd();
        #[cfg(feature = "sanitize")]
        self.check_invariants();
    }

    fn pressure_off(&mut self, idx: usize) {
        for f in std::mem::take(&mut self.balloon[idx]) {
            self.mem.phys.free(f);
        }
        #[cfg(feature = "sanitize")]
        self.check_invariants();
    }

    // ---------------------------------------------------------------
    // Slice execution
    // ---------------------------------------------------------------

    fn run_slice(&mut self, tid: ThreadId) -> (Nanos, SliceOutcome) {
        match &self.bodies[tid.0 as usize] {
            ThreadBody::App { .. } => self.run_app_slice(tid),
            ThreadBody::Kswapd => self.run_kswapd_slice(),
            ThreadBody::Aging => self.run_aging_slice(),
        }
    }

    fn run_app_slice(&mut self, tid: ThreadId) -> (Nanos, SliceOutcome) {
        if self.killed[tid.0 as usize] {
            // Killed by the OOM killer or an unrecoverable I/O error:
            // retire without consuming further ops.
            return (0, SliceOutcome::Finished);
        }
        let budget = self.sched.quantum();
        let mut used: Nanos = 0;
        loop {
            // Pull the next op (a pending op was interrupted by preemption
            // or frame starvation and must be retried).
            let op = {
                let ThreadBody::App { stream, pending, .. } = &mut self.bodies[tid.0 as usize]
                else {
                    unreachable!("app slice on kernel thread")
                };
                match pending.take() {
                    Some(op) => op,
                    None => stream.next_op(),
                }
            };
            match op {
                Op::Compute { cpu_ns } => {
                    let room = budget.saturating_sub(used);
                    if cpu_ns > room {
                        used = budget;
                        let ThreadBody::App { pending, .. } = &mut self.bodies[tid.0 as usize]
                        else {
                            unreachable!()
                        };
                        *pending = Some(Op::Compute { cpu_ns: cpu_ns - room });
                        return (used, SliceOutcome::Preempted);
                    }
                    used += cpu_ns;
                }
                Op::Access {
                    space,
                    vpn,
                    write,
                    cpu_ns,
                }
                | Op::FdAccess {
                    space,
                    vpn,
                    write,
                    cpu_ns,
                } => {
                    if used + cpu_ns as u64 > budget {
                        let ThreadBody::App { pending, .. } = &mut self.bodies[tid.0 as usize]
                        else {
                            unreachable!()
                        };
                        *pending = Some(op);
                        return (budget, SliceOutcome::Preempted);
                    }
                    used += cpu_ns as u64;
                    let fd = matches!(op, Op::FdAccess { .. });
                    match self.touch(tid, space, vpn, write, fd, &mut used) {
                        TouchResult::Hit => {}
                        TouchResult::BlockedIo => return (used, SliceOutcome::Blocked),
                        TouchResult::Starved => {
                            // Retry the whole access once frames free up.
                            let ThreadBody::App { pending, .. } =
                                &mut self.bodies[tid.0 as usize]
                            else {
                                unreachable!()
                            };
                            *pending = Some(op);
                            return (used, SliceOutcome::Blocked);
                        }
                        TouchResult::Killed => return (used, SliceOutcome::Finished),
                    }
                }
                Op::Barrier { id } => {
                    used += self.cfg.app_costs.barrier_ns;
                    match self.barriers.arrive(id, tid) {
                        Some(waiters) => {
                            for w in waiters {
                                self.sched.make_runnable(w);
                            }
                        }
                        None => return (used, SliceOutcome::Blocked),
                    }
                }
                Op::RequestStart { class, warmup } => {
                    let at = self.now + used;
                    let ThreadBody::App { request, .. } = &mut self.bodies[tid.0 as usize]
                    else {
                        unreachable!()
                    };
                    if request.is_some() {
                        self.metrics.error.get_or_insert(SimError::NestedRequest);
                    }
                    *request = Some((class, at, warmup));
                }
                Op::RequestEnd => {
                    let at = self.now + used;
                    let ThreadBody::App { request, .. } = &mut self.bodies[tid.0 as usize]
                    else {
                        unreachable!()
                    };
                    let Some((class, start, warmup)) = request.take() else {
                        self.metrics
                            .error
                            .get_or_insert(SimError::RequestWithoutStart);
                        continue;
                    };
                    if !warmup {
                        let latency = at.saturating_since(start).max(1);
                        match class {
                            ReqClass::Read => self.metrics.read_latency.record(latency),
                            ReqClass::Write => self.metrics.write_latency.record(latency),
                        }
                    }
                }
                Op::Done => return (used, SliceOutcome::Finished),
            }
            if used >= budget {
                return (used, SliceOutcome::Preempted);
            }
        }
    }

    // ---------------------------------------------------------------
    // MMU touch and fault path
    // ---------------------------------------------------------------

    fn touch(
        &mut self,
        tid: ThreadId,
        space: AsId,
        vpn: Vpn,
        write: bool,
        fd: bool,
        used: &mut Nanos,
    ) -> TouchResult {
        let pte = self.mem.space(space).pte(vpn);
        if pte.present() {
            let key = self.mem.space(space).key_of(vpn);
            if fd {
                *used += self.cfg.app_costs.fd_hit_ns;
                if write && !pte.dirty() {
                    self.dirty_transition(key);
                    self.mem.space_mut(space).set_dirty(vpn);
                }
                self.policy.on_fd_access(key, &mut self.mem);
            } else {
                *used += self.cfg.app_costs.mem_access_ns;
                if write && !pte.dirty() {
                    self.dirty_transition(key);
                }
                self.mem.space_mut(space).mark_accessed(vpn, write);
            }
            self.metrics.accesses += 1;
            return TouchResult::Hit;
        }
        self.fault(tid, space, vpn, write, fd, used)
    }

    /// Invalidate swap backing when a clean page gets dirtied.
    fn dirty_transition(&mut self, key: PageKey) {
        if let Some(slot) = self.mem.backing[key as usize].take() {
            self.slot_ready.remove(&slot);
            self.swap.release(slot);
        }
    }

    fn fault(
        &mut self,
        tid: ThreadId,
        space: AsId,
        vpn: Vpn,
        write: bool,
        fd: bool,
        used: &mut Nanos,
    ) -> TouchResult {
        // Host-time fault-path probe for `repro bench`; zero-sized no-op
        // unless `bench-counters` is compiled in.
        let _bench_timer = crate::benchcounters::time_fault();
        let key = self.mem.space(space).key_of(vpn);
        // 0. Page-lock analog: if another thread's fault on this page is
        //    already in flight, wait for its I/O and retry the access.
        if let Some(waiters) = self.inflight.get_mut(&key) {
            waiters.push(tid);
            self.metrics.shared_fault_waits += 1;
            return TouchResult::Starved;
        }
        // 1. A frame must be available before any read can start.
        let frame = match self.grab_frame(key, used) {
            Some(f) => {
                self.stall_streak = 0;
                self.frame_owner[f as usize] = Some(tid);
                f
            }
            None => {
                self.metrics.alloc_stalls += 1;
                if self.note_alloc_stall() {
                    // The OOM killer chose *this* thread.
                    if self.killed[tid.0 as usize] {
                        return TouchResult::Killed;
                    }
                }
                // All frames pinned by in-flight write-back (or everything
                // looked accessed): retry shortly.
                self.events.push(
                    self.now + *used + 300 * MICROSECOND,
                    Event::Wake { tid },
                );
                return TouchResult::Starved;
            }
        };

        let pte = self.mem.space(space).pte(vpn);
        let info = self.mem.arena.info(key);
        if pte.swapped() || info.file_backed {
            // Major fault: content must come from the device (swap slot or
            // backing file).
            *used += self.cfg.app_costs.major_fault_ns;
            let slot = pte.swap_slot();
            let vt = self.now + *used;
            // Reads of slots still being written wait for durability.
            let submit = match slot.and_then(|s| self.slot_ready.get(&s)) {
                Some(&ready) => vt.max(ready),
                None => vt,
            };
            let out = match slot {
                Some(s) => self.swap.read(submit, s),
                None => self.swap.file_read(submit), // demand read of a file page
            };
            let out = match out {
                Ok(o) => o,
                Err(fail) => {
                    *used += fail.cpu_ns;
                    return self.swap_in_failed(tid, frame, fail.error, used);
                }
            };
            self.retry_attempts[tid.0 as usize] = 0;
            self.metrics.major_faults += 1;
            *used += out.cpu_ns;
            let sync_done = self.now + *used;
            if out.done_at <= sync_done.max(submit + out.cpu_ns) && submit == vt {
                // CPU-bound medium (ZRAM): the fault resolves inline.
                self.complete_major_fault(tid, key, frame, slot, write, fd);
                TouchResult::Hit
            } else {
                trace_event!(
                    self,
                    (self.now + *used).as_ns(),
                    TraceEvent::FaultBegin {
                        tid: tid.0,
                        key: key as u64,
                    }
                );
                self.inflight.insert(key, Vec::new());
                self.io_pinned.insert(frame);
                self.events.push(
                    out.done_at,
                    Event::IoDone {
                        tid,
                        key,
                        frame,
                        slot,
                        write,
                        fd,
                    },
                );
                TouchResult::BlockedIo
            }
        } else {
            // Minor fault: zero-fill. The page is mapped dirty — it
            // represents data the application materialized.
            self.metrics.minor_faults += 1;
            *used += self.cfg.app_costs.minor_fault_ns;
            self.mem.space_mut(space).map(vpn, frame);
            self.mem.space_mut(space).mark_accessed(vpn, true);
            self.policy.on_page_resident(key, false, &mut self.mem);
            TouchResult::Hit
        }
    }

    /// A swap-in read was rejected by the device. Transient errors back
    /// off exponentially and retry; a permanent error (or an exhausted
    /// retry budget) kills the faulting task — the SIGBUS analog.
    fn swap_in_failed(
        &mut self,
        tid: ThreadId,
        frame: FrameId,
        error: IoError,
        used: &mut Nanos,
    ) -> TouchResult {
        self.metrics.io_errors += 1;
        trace_event!(
            self,
            (self.now + *used).as_ns(),
            TraceEvent::FaultInjected { write: false }
        );
        // The fault did not complete: hand the frame back.
        self.frame_owner[frame as usize] = None;
        self.mem.phys.free(frame);
        let ti = tid.0 as usize;
        if error == IoError::Permanent || self.retry_attempts[ti] >= self.cfg.faults.max_io_retries
        {
            self.metrics.io_kills += 1;
            self.kill_thread(tid);
            return TouchResult::Killed;
        }
        let backoff = self
            .cfg
            .faults
            .retry_backoff_base
            .saturating_mul(1u64 << self.retry_attempts[ti].min(24))
            .min(self.cfg.faults.retry_backoff_cap);
        self.retry_attempts[ti] += 1;
        self.metrics.io_retries += 1;
        self.metrics.backoff_ns += backoff;
        self.events
            .push(self.now + *used + backoff, Event::Wake { tid });
        TouchResult::Starved
    }

    /// Counts a starved allocation toward the OOM trigger. Returns `true`
    /// if the OOM killer ran.
    fn note_alloc_stall(&mut self) -> bool {
        let Some(limit) = self.cfg.faults.oom_after_stalls else {
            return false;
        };
        self.stall_streak += 1;
        if self.stall_streak < limit {
            return false;
        }
        self.stall_streak = 0;
        self.oom_kill();
        true
    }

    /// Finishes a swap-in/file read: maps the page and updates the policy.
    fn complete_major_fault(
        &mut self,
        _tid: ThreadId,
        key: PageKey,
        frame: FrameId,
        slot: Option<SwapSlot>,
        write: bool,
        fd: bool,
    ) {
        let (space, vpn) = self.mem.locate(key);
        self.mem.space_mut(space).map(vpn, frame);
        if let Some(slot) = slot {
            self.slot_ready.remove(&slot);
            if write {
                // Dirtied immediately: the swap copy is stale.
                self.swap.release(slot);
                self.mem.backing[key as usize] = None;
            } else {
                // Keep the clean copy (swap-cache): a later clean eviction
                // is free.
                self.mem.backing[key as usize] = Some(slot);
            }
        }
        if fd {
            if write {
                self.mem.space_mut(space).set_dirty(vpn);
            }
            let refault = self.mem.evicted_before[key as usize];
            self.policy.on_page_resident(key, refault, &mut self.mem);
            self.policy.on_fd_access(key, &mut self.mem);
        } else {
            self.mem.space_mut(space).mark_accessed(vpn, write);
            let refault = self.mem.evicted_before[key as usize];
            self.policy.on_page_resident(key, refault, &mut self.mem);
        }
        // Working-set accounting (`workingset.c`): consume the shadow
        // entry and classify the refault by its distance. `activate` when
        // the page would have stayed resident in a memory-capacity-sized
        // list; `restore` when the clean swap-cache copy is kept.
        if let Some(entry) = self.shadow.take(key) {
            let distance = self.metrics.evictions - entry.eviction_seq;
            self.metrics.workingset_refault += 1;
            self.metrics.workingset_refault_distance.record(distance);
            if distance <= self.metrics.capacity_frames as u64 {
                self.metrics.workingset_activate += 1;
            }
            if slot.is_some() && !write {
                self.metrics.workingset_restore += 1;
            }
        }
        // `evicted_before` is monotonic, so reading it again here gives the
        // same `refault` both branches above saw.
        #[cfg(feature = "trace")]
        if self.mem.evicted_before[key as usize] {
            if let Some(tr) = self.tracer.as_deref_mut() {
                tr.note_refault();
            }
        }
        self.metrics.accesses += 1;
    }

    /// Allocates a frame, running direct reclaim on the calling thread if
    /// needed. Returns `None` when progress requires waiting for
    /// write-backs.
    fn grab_frame(&mut self, key: PageKey, used: &mut Nanos) -> Option<FrameId> {
        if let Some(f) = self.mem.phys.allocate(key) {
            self.maybe_wake_kswapd();
            return Some(f);
        }
        // Direct reclaim: the faulting thread pays for victim selection
        // and swap-out CPU.
        self.metrics.direct_reclaims += 1;
        for _ in 0..2 {
            let bench_timer = crate::benchcounters::time_reclaim();
            let out = self.policy.reclaim(self.cfg.direct_batch, &mut self.mem);
            self.metrics.pgscan_direct += out.scanned;
            *used += out.cpu_ns;
            let vt = self.now + *used;
            *used += self.apply_evictions(&out.victims, vt);
            drop(bench_timer);
            trace_event!(
                self,
                (self.now + *used).as_ns(),
                TraceEvent::ReclaimBatch {
                    direct: true,
                    victims: out.victims.len() as u32,
                    scanned: out.scanned,
                    cpu_ns: out.cpu_ns,
                }
            );
            self.maybe_wake_aging();
            if let Some(f) = self.mem.phys.allocate_from_reserve(key) {
                self.maybe_wake_kswapd();
                return Some(f);
            }
            if out.victims.is_empty() {
                break;
            }
        }
        self.maybe_wake_kswapd();
        None
    }

    // ---------------------------------------------------------------
    // Eviction and reclaim threads
    // ---------------------------------------------------------------

    /// Unmaps victims and performs swap-out. Returns CPU time charged to
    /// the reclaiming thread (write submission, compression).
    ///
    /// A rejected device write (injected error, full ZRAM pool) aborts
    /// that victim's eviction: the page stays resident and is handed back
    /// to the policy. The attempted operation's CPU is still charged.
    fn apply_evictions(&mut self, victims: &[PageKey], vt: SimTime) -> Nanos {
        let mut cpu: Nanos = 0;
        for &key in victims {
            let (space, vpn) = self.mem.locate(key);
            let pte = self.mem.space(space).pte(vpn);
            let Some(frame) = pte.frame() else {
                debug_assert!(false, "victim {key} not resident");
                continue;
            };
            let info = self.mem.arena.info(key);
            if info.file_backed {
                if pte.dirty() {
                    // Write back to the file, then drop.
                    match self.swap.file_write(vt + cpu) {
                        Ok(out) => {
                            cpu += out.cpu_ns;
                            self.metrics.swap_outs += 1;
                            self.pin_until(frame, vt + cpu, out.done_at);
                        }
                        Err(fail) => {
                            cpu += fail.cpu_ns;
                            self.abort_eviction(key);
                            continue;
                        }
                    }
                } else {
                    self.frame_owner[frame as usize] = None;
                    self.mem.phys.free(frame);
                }
                self.mem.space_mut(space).clear_mapping(vpn);
            } else if let Some(slot) = self.mem.backing[key as usize].take() {
                // Clean anon page with a valid swap copy: free drop.
                debug_assert!(!pte.dirty(), "dirty page kept backing");
                self.mem.space_mut(space).set_swapped(vpn, slot);
                self.frame_owner[frame as usize] = None;
                self.mem.phys.free(frame);
                self.metrics.clean_drops += 1;
            } else {
                // Dirty anon page: allocate a slot and write.
                let slot = self.swap.allocate_slot();
                match self.swap.write(vt + cpu, slot, info.entropy) {
                    Ok(out) => {
                        cpu += out.cpu_ns;
                        self.slot_ready.insert(slot, out.done_at);
                        self.mem.space_mut(space).set_swapped(vpn, slot);
                        self.metrics.swap_outs += 1;
                        self.pin_until(frame, vt + cpu, out.done_at);
                    }
                    Err(fail) => {
                        cpu += fail.cpu_ns;
                        self.swap.release(slot);
                        self.abort_eviction(key);
                        continue;
                    }
                }
            }
            self.policy.on_page_evicted(key, &mut self.mem);
            self.mem.evicted_before[key as usize] = true;
            self.metrics.evictions += 1;
            if info.file_backed {
                self.metrics.pgsteal_file += 1;
            } else {
                self.metrics.pgsteal_anon += 1;
            }
            // Shadow entry (`workingset.c`): snapshot the eviction clock so
            // a refault can compute its distance in evictions.
            self.shadow
                .record(key, (vt + cpu).as_ns(), self.metrics.evictions);
        }
        #[cfg(feature = "sanitize")]
        self.check_invariants();
        cpu
    }

    /// Reverses a reclaim decision after the device rejected the
    /// write-back: the page stays mapped and the policy re-tracks it as
    /// resident (the reclaim pass had already detached it).
    fn abort_eviction(&mut self, key: PageKey) {
        self.metrics.io_errors += 1;
        self.metrics.eviction_aborts += 1;
        trace_event!(
            self,
            self.now.as_ns(),
            TraceEvent::FaultInjected { write: true }
        );
        self.policy.on_page_resident(key, false, &mut self.mem);
    }

    /// Frees the frame now (synchronous media) or pins it until `done_at`.
    fn pin_until(&mut self, frame: FrameId, vt: SimTime, done_at: SimTime) {
        self.frame_owner[frame as usize] = None;
        if done_at <= vt {
            self.mem.phys.free(frame);
        } else {
            self.mem.phys.begin_writeback(frame);
            self.events.push(done_at, Event::FrameFree { frame });
        }
    }

    // ---------------------------------------------------------------
    // OOM killer
    // ---------------------------------------------------------------

    /// Kills the app thread with the largest RSS (first-touch frame
    /// attribution), freeing its frames. Mirrors the kernel's OOM badness
    /// heuristic in its simplest form: biggest wins, ties to the lowest
    /// tid for determinism.
    fn oom_kill(&mut self) {
        self.oom_rss.fill(0);
        for f in 0..self.mem.phys.capacity() as u32 {
            if self.mem.phys.state(f) == FrameState::InUse {
                if let Some(t) = self.frame_owner[f as usize] {
                    self.oom_rss[t.0 as usize] += 1;
                }
            }
        }
        let rss = &self.oom_rss;
        let victim = (0..self.bodies.len())
            .filter(|&i| matches!(self.bodies[i], ThreadBody::App { .. }))
            .filter(|&i| !self.killed[i] && !self.sched.is_finished(ThreadId(i as u32)))
            .filter(|&i| rss[i] > 0)
            .max_by_key(|&i| (rss[i], std::cmp::Reverse(i)));
        let Some(v) = victim else {
            return; // nothing killable owns memory; keep stalling
        };
        self.metrics.oom_kills += 1;
        trace_event!(
            self,
            self.now.as_ns(),
            TraceEvent::OomKill { victim: v as u32 }
        );
        self.kill_thread(ThreadId(v as u32));
    }

    /// Marks `victim` killed, releases the frames it faulted in, and
    /// detaches it from barriers so peers are not stranded. The thread
    /// retires at its next dispatch.
    ///
    /// Model simplification: in shared address spaces the victim's
    /// first-touched pages are dropped outright; surviving threads
    /// re-fault them as zero-fill minor faults.
    fn kill_thread(&mut self, victim: ThreadId) {
        let vi = victim.0 as usize;
        if self.killed[vi] || self.sched.is_finished(victim) {
            return;
        }
        self.killed[vi] = true;
        let mut freed = 0u64;
        for f in 0..self.mem.phys.capacity() as u32 {
            if self.frame_owner[f as usize] != Some(victim) {
                continue;
            }
            if self.mem.phys.state(f) != FrameState::InUse {
                self.frame_owner[f as usize] = None;
                continue;
            }
            if self.io_pinned.contains(&f) {
                // An IoDone for this frame is in flight; its handler will
                // free it (the thread is marked killed by then).
                continue;
            }
            let Some(key) = self.mem.phys.owner(f) else {
                self.frame_owner[f as usize] = None;
                continue;
            };
            let (space, vpn) = self.mem.locate(key);
            self.policy.forget(key);
            self.mem.space_mut(space).clear_mapping(vpn);
            // A dropped page's shadow can never refault meaningfully: the
            // contents are gone (`workingset_nodereclaim` analog).
            if self.shadow.reclaim(key) {
                self.metrics.workingset_nodereclaim += 1;
            }
            if let Some(slot) = self.mem.backing[key as usize].take() {
                self.slot_ready.remove(&slot);
                self.swap.release(slot);
            }
            self.frame_owner[f as usize] = None;
            self.mem.phys.free(f);
            freed += 1;
        }
        self.metrics.kill_freed_frames += freed;
        for w in self.barriers.depart(victim) {
            if !self.sched.is_finished(w) {
                self.sched.make_runnable(w);
            }
        }
        // Ensure the victim reaches dispatch and retires (a no-op if it
        // is already runnable; a pending wake if it is mid-slice).
        self.sched.make_runnable(victim);
        self.maybe_wake_kswapd();
        #[cfg(feature = "sanitize")]
        self.check_invariants();
    }

    fn maybe_wake_kswapd(&mut self) {
        if self.kswapd_asleep && self.mem.phys.below_low() {
            self.kswapd_asleep = false;
            self.sched.make_runnable(self.kswapd);
        }
    }

    fn maybe_wake_aging(&mut self) {
        if self.aging_asleep && self.policy.wants_background(&self.mem) {
            self.aging_asleep = false;
            self.sched.make_runnable(self.aging);
        }
    }

    fn run_kswapd_slice(&mut self) -> (Nanos, SliceOutcome) {
        let budget = self.sched.quantum();
        let mut used: Nanos = 0;
        loop {
            if self.mem.phys.above_high() {
                self.kswapd_asleep = true;
                return (used, SliceOutcome::Blocked);
            }
            // Write-back throttling: stop feeding the device while its
            // queue is deep, or swap-out storms starve demand reads.
            if self.swap.backlog(self.now + used) > self.cfg.writeback_throttle_ns {
                self.metrics.writeback_throttles += 1;
                trace_event!(
                    self,
                    (self.now + used).as_ns(),
                    TraceEvent::Throttle {
                        backlog_ns: self.swap.backlog(self.now + used),
                    }
                );
                self.kswapd_asleep = true;
                if !self.kswapd_retry_pending {
                    self.kswapd_retry_pending = true;
                    self.events
                        .push(self.now + used + 10 * MILLISECOND, Event::KswapdRetry);
                }
                return (used, SliceOutcome::Blocked);
            }
            let bench_timer = crate::benchcounters::time_reclaim();
            let out = self.policy.reclaim(self.cfg.kswapd_batch, &mut self.mem);
            self.metrics.pgscan_kswapd += out.scanned;
            used += out.cpu_ns;
            let vt = self.now + used;
            used += self.apply_evictions(&out.victims, vt);
            drop(bench_timer);
            self.metrics.kswapd_batches += 1;
            trace_event!(
                self,
                (self.now + used).as_ns(),
                TraceEvent::ReclaimBatch {
                    direct: false,
                    victims: out.victims.len() as u32,
                    scanned: out.scanned,
                    cpu_ns: out.cpu_ns,
                }
            );
            self.maybe_wake_aging();
            if out.victims.is_empty() {
                // No progress possible right now (write-backs in flight or
                // everything recently accessed): retry shortly.
                self.kswapd_asleep = true;
                if !self.kswapd_retry_pending {
                    self.kswapd_retry_pending = true;
                    self.events
                        .push(self.now + used + 2 * MILLISECOND, Event::KswapdRetry);
                }
                return (used, SliceOutcome::Blocked);
            }
            if used >= budget {
                return (used, SliceOutcome::Preempted);
            }
        }
    }

    fn run_aging_slice(&mut self) -> (Nanos, SliceOutcome) {
        if !self.policy.wants_background(&self.mem) {
            self.aging_asleep = true;
            return (0, SliceOutcome::Blocked);
        }
        let bg = self
            .policy
            .background_work(self.sched.quantum(), &mut self.mem);
        self.metrics.aging_runs += 1;
        trace_event!(
            self,
            self.now.as_ns(),
            TraceEvent::AgingPass { cpu_ns: bg.cpu_ns }
        );
        if self.policy.wants_background(&self.mem) {
            (bg.cpu_ns, SliceOutcome::Preempted)
        } else {
            self.aging_asleep = true;
            (bg.cpu_ns, SliceOutcome::Blocked)
        }
    }

    /// Read-only access to live metrics (diagnostics/tests).
    pub fn metrics(&self) -> &RunMetrics {
        &self.metrics
    }

    /// CONFIG_DEBUG_VM analog (the `sanitize` feature): a full structural
    /// cross-check of page tables, the frame pool, swap-slot references,
    /// in-flight I/O pins, and policy bookkeeping. Runs at quiesce points
    /// (after reclaim batches, kills, and pressure steps); compiled out of
    /// release figure runs.
    ///
    /// # Panics
    ///
    /// Panics with a `sanitize: <invariant>:` message on the first
    /// violated invariant.
    ///
    /// At paper-native footprints the full O(pages) sweep at *every*
    /// quiesce point would dominate wall time, so above
    /// [`SANITIZE_THROTTLE_PAGES`](Self::SANITIZE_THROTTLE_PAGES) only
    /// every [`SANITIZE_THROTTLE_PERIOD`](Self::SANITIZE_THROTTLE_PERIOD)th
    /// call sweeps (the first call always does, and
    /// [`finalize`](Self::finalize) always runs the full check).
    #[cfg(feature = "sanitize")]
    fn check_invariants(&self) {
        let tick = self.sanitize_tick.get();
        self.sanitize_tick.set(tick + 1);
        if self.mem.arena.len() > Self::SANITIZE_THROTTLE_PAGES
            && tick % Self::SANITIZE_THROTTLE_PERIOD != 0
        {
            return;
        }
        self.check_invariants_full();
    }

    /// Footprint above which per-quiesce sweeps are sampled.
    #[cfg(feature = "sanitize")]
    const SANITIZE_THROTTLE_PAGES: usize = 1 << 18;
    /// One in this many quiesce points sweeps when throttled.
    #[cfg(feature = "sanitize")]
    const SANITIZE_THROTTLE_PERIOD: u64 = 64;

    #[cfg(feature = "sanitize")]
    fn check_invariants_full(&self) {
        self.mem.phys.check_invariants();

        // Sidecar accessed/present bitmaps against the PTE array and the
        // per-region population counts.
        for space in &self.mem.spaces {
            if let Err(e) = space.check_bitmap_coherence() {
                panic!("sanitize: pte-bitmap: {e}");
            }
        }

        // Page sweep: every PTE against the reverse map, swap backing,
        // and the dirty bit.
        let mut slot_refs: BTreeSet<SwapSlot> = BTreeSet::new();
        let mut mapped_frames: BTreeSet<FrameId> = BTreeSet::new();
        for key in 0..self.mem.arena.len() as PageKey {
            let (space, vpn) = self.mem.locate(key);
            let pte = self.mem.space(space).pte(vpn);
            if pte.present() {
                let Some(frame) = pte.frame() else {
                    panic!("sanitize: rmap-pte: page {key} present without a frame");
                };
                assert_eq!(
                    self.mem.phys.owner(frame),
                    Some(key),
                    "sanitize: rmap-pte: page {key} maps frame {frame} owned by {:?}",
                    self.mem.phys.owner(frame)
                );
                assert_eq!(
                    self.mem.phys.state(frame),
                    FrameState::InUse,
                    "sanitize: rmap-pte: page {key} maps frame {frame} in state {:?}",
                    self.mem.phys.state(frame)
                );
                assert!(
                    mapped_frames.insert(frame),
                    "sanitize: rmap-pte: frame {frame} mapped by two pages"
                );
                if let Some(slot) = self.mem.backing[key as usize] {
                    assert!(
                        !pte.dirty(),
                        "sanitize: dirty-backing: dirty page {key} still holds swap backing {slot}"
                    );
                    assert!(
                        slot_refs.insert(slot),
                        "sanitize: swap-slot: slot {slot} referenced twice"
                    );
                }
            } else {
                assert!(
                    self.mem.backing[key as usize].is_none(),
                    "sanitize: dirty-backing: non-resident page {key} holds swap backing"
                );
                if pte.swapped() {
                    let Some(slot) = pte.swap_slot() else {
                        panic!("sanitize: swap-slot: page {key} swapped without a slot");
                    };
                    assert!(
                        slot_refs.insert(slot),
                        "sanitize: swap-slot: slot {slot} referenced twice"
                    );
                }
            }
        }

        // Frame sweep: every in-use frame must be mapped by its owner,
        // pinned by in-flight fault I/O, or held by a pressure balloon.
        let balloon: BTreeSet<FrameId> = self.balloon.iter().flatten().copied().collect();
        for f in 0..self.mem.phys.capacity() as FrameId {
            match self.mem.phys.owner(f) {
                Some(BALLOON_KEY) => {
                    assert!(
                        balloon.contains(&f),
                        "sanitize: rmap-pte: frame {f} owned by the balloon key but not held by a pressure step"
                    );
                }
                Some(key) if self.io_pinned.contains(&f) => {
                    assert!(
                        self.inflight.contains_key(&key),
                        "sanitize: inflight-io: io-pinned frame {f} (page {key}) has no inflight fault"
                    );
                    assert!(
                        !mapped_frames.contains(&f),
                        "sanitize: inflight-io: io-pinned frame {f} is already mapped"
                    );
                }
                Some(key) => {
                    assert!(
                        mapped_frames.contains(&f),
                        "sanitize: rmap-pte: in-use frame {f} owned by page {key} is not mapped"
                    );
                }
                None => {
                    assert!(
                        !mapped_frames.contains(&f),
                        "sanitize: rmap-pte: ownerless frame {f} is mapped"
                    );
                }
            }
        }
        for &f in &self.io_pinned {
            assert_eq!(
                self.mem.phys.state(f),
                FrameState::InUse,
                "sanitize: inflight-io: io-pinned frame {f} in state {:?}",
                self.mem.phys.state(f)
            );
        }
        assert_eq!(
            self.inflight.len(),
            self.io_pinned.len(),
            "sanitize: inflight-io: {} inflight faults vs {} io-pinned frames",
            self.inflight.len(),
            self.io_pinned.len()
        );

        // Slot sweep: pending-durability slots must be referenced, every
        // referenced slot must hold data, and the device's live count must
        // equal the kernel's reference count.
        for &slot in self.slot_ready.keys() {
            assert!(
                slot_refs.contains(&slot),
                "sanitize: swap-slot: slot {slot} pending durability is unreferenced"
            );
        }
        for &slot in &slot_refs {
            assert!(
                self.swap.sanitize_slot_stored(slot),
                "sanitize: swap-slot: referenced slot {slot} holds no data on the device"
            );
        }
        let live = self.swap.sanitize_check();
        assert_eq!(
            live,
            slot_refs.len() as u64,
            "sanitize: swap-slot: device reports {live} live slots but the kernel references {}",
            slot_refs.len()
        );

        // Policy cross-check: pages the policy tracks vs present PTEs.
        if let Some(tracked) = self.policy.check_invariants() {
            let resident = u64::from(self.mem.resident_pages());
            assert_eq!(
                tracked, resident,
                "sanitize: attached-resident: policy tracks {tracked} pages but {resident} PTEs are present"
            );
        }
    }
}

enum TouchResult {
    Hit,
    BlockedIo,
    Starved,
    /// The faulting thread was killed (permanent I/O failure or the OOM
    /// killer chose it); the slice finishes immediately.
    Killed,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FaultConfig, PolicyChoice};
    use pagesim_engine::{FaultPlan, StallPlan, SECOND};
    use pagesim_workloads::tpch::{TpchConfig, TpchWorkload};
    use pagesim_workloads::ycsb::{YcsbConfig, YcsbMix, YcsbWorkload};

    fn cfg(policy: PolicyChoice, swap: SwapChoice, ratio: f64) -> SystemConfig {
        SystemConfig::new(policy, swap)
            .capacity_ratio(ratio)
            .cores(4)
    }

    #[test]
    fn full_capacity_run_has_no_major_faults() {
        let w = TpchWorkload::new(TpchConfig::tiny());
        let m = Kernel::build(&cfg(PolicyChoice::Clock, SwapChoice::Zram, 1.0), &w, 1).run();
        assert_eq!(m.major_faults, 0, "no pressure, no swap");
        assert!(m.minor_faults > 0, "first touches still fault");
        assert!(m.runtime_ns > 0);
        assert_eq!(m.error, None);
    }

    #[test]
    fn pressure_forces_swapping_clock() {
        let w = TpchWorkload::new(TpchConfig::tiny());
        let m = Kernel::build(&cfg(PolicyChoice::Clock, SwapChoice::Zram, 0.5), &w, 1).run();
        assert!(m.major_faults > 0);
        assert!(m.swap_outs > 0);
        assert!(m.evictions as i64 >= m.swap_outs as i64);
    }

    #[test]
    fn pressure_forces_swapping_mglru() {
        let w = TpchWorkload::new(TpchConfig::tiny());
        let m = Kernel::build(
            &cfg(PolicyChoice::MgLruDefault, SwapChoice::Zram, 0.5),
            &w,
            1,
        )
        .run();
        assert!(m.major_faults > 0);
        assert!(m.aging_runs > 0, "aging thread must run under pressure");
        assert!(m.policy.aging_passes > 0);
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let w = TpchWorkload::new(TpchConfig::tiny());
        let c = cfg(PolicyChoice::MgLruDefault, SwapChoice::Zram, 0.5);
        let a = Kernel::build(&c, &w, 7).run();
        let b = Kernel::build(&c, &w, 7).run();
        assert_eq!(a.runtime_ns, b.runtime_ns);
        assert_eq!(a.major_faults, b.major_faults);
        let c2 = Kernel::build(&c, &w, 8).run();
        assert!(
            a.runtime_ns != c2.runtime_ns || a.major_faults != c2.major_faults,
            "different seeds should differ"
        );
    }

    #[test]
    fn ssd_faults_cost_more_time_than_zram() {
        let w = TpchWorkload::new(TpchConfig::tiny());
        let ssd = Kernel::build(&cfg(PolicyChoice::Clock, SwapChoice::Ssd, 0.5), &w, 3).run();
        let zram = Kernel::build(&cfg(PolicyChoice::Clock, SwapChoice::Zram, 0.5), &w, 3).run();
        assert!(
            ssd.runtime_ns > 2 * zram.runtime_ns,
            "ssd {} vs zram {}",
            ssd.runtime_ns,
            zram.runtime_ns
        );
    }

    #[test]
    fn ycsb_records_latencies() {
        let w = YcsbWorkload::new(YcsbConfig::tiny(YcsbMix::A), 1);
        let m = Kernel::build(&cfg(PolicyChoice::Clock, SwapChoice::Zram, 0.5), &w, 2).run();
        assert!(m.read_latency.count() > 1000);
        assert!(m.write_latency.count() > 1000);
        assert!(m.read_latency.value_at_percentile(99.0) >= m.read_latency.value_at_percentile(50.0));
    }

    #[test]
    fn frames_never_exceed_capacity() {
        let w = TpchWorkload::new(TpchConfig::tiny());
        let k = Kernel::build(&cfg(PolicyChoice::MgLruDefault, SwapChoice::Zram, 0.5), &w, 1);
        let cap = k.mem.phys.capacity();
        let m = k.run();
        assert!(m.footprint_pages as usize > cap, "pressure sanity");
    }

    #[test]
    fn clean_drops_happen_for_reread_pages() {
        // TPC-H re-reads table pages across stages; after the first
        // swap-out cycle, re-faulted clean pages should drop for free.
        let w = TpchWorkload::new(TpchConfig::tiny());
        let m = Kernel::build(&cfg(PolicyChoice::Clock, SwapChoice::Zram, 0.5), &w, 1).run();
        assert!(m.clean_drops > 0, "swap-cache fast path never used");
    }

    // ------------------------------------------------------------
    // Fault model
    // ------------------------------------------------------------

    #[test]
    fn default_fault_config_matches_faultless_run() {
        // The explicit none() config must be bit-identical to the default.
        let w = TpchWorkload::new(TpchConfig::tiny());
        let base = cfg(PolicyChoice::MgLruDefault, SwapChoice::Zram, 0.5);
        let with_none = base.clone().faults(FaultConfig::none());
        let a = Kernel::build(&base, &w, 11).run();
        let b = Kernel::build(&with_none, &w, 11).run();
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "zero-drift violated");
        assert_eq!(a.io_errors, 0);
        assert_eq!(a.io_retries, 0);
        assert_eq!(a.oom_kills, 0);
    }

    #[test]
    fn transient_errors_are_retried_and_survive() {
        let w = TpchWorkload::new(TpchConfig::tiny());
        let faults = FaultConfig {
            plan: FaultPlan {
                error_rate: 0.05,
                ..FaultPlan::none()
            },
            ..FaultConfig::none()
        };
        let m = Kernel::build(
            &cfg(PolicyChoice::Clock, SwapChoice::Zram, 0.5).faults(faults),
            &w,
            1,
        )
        .run();
        assert!(m.io_errors > 0, "5% error rate must hit");
        assert!(m.io_retries > 0, "transient errors must be retried");
        assert!(m.backoff_ns > 0);
        assert_eq!(m.error, None, "run must complete despite errors");
        assert!(m.runtime_ns > 0);
    }

    #[test]
    fn permanent_failure_kills_faulting_tasks() {
        let w = TpchWorkload::new(TpchConfig::tiny());
        // Fail the device mid-run (the tiny workload finishes in ~6ms of
        // simulated time): tasks that swap in after the cliff die. The OOM
        // backstop keeps frame starvation from livelocking once reclaim
        // can no longer write anything out.
        let faults = FaultConfig {
            plan: FaultPlan {
                fail_permanently_at: Some(2 * MILLISECOND),
                ..FaultPlan::none()
            },
            oom_after_stalls: Some(64),
            ..FaultConfig::none()
        };
        let m = Kernel::build(
            &cfg(PolicyChoice::Clock, SwapChoice::Zram, 0.5).faults(faults),
            &w,
            1,
        )
        .run();
        assert!(m.io_errors > 0);
        assert!(m.io_kills > 0, "permanent failure must kill tasks");
        assert!(m.kill_freed_frames > 0, "kill must release frames");
        assert_eq!(m.error, None, "run must terminate cleanly");
    }

    #[test]
    fn oom_killer_fires_when_zram_pool_is_tiny() {
        let w = TpchWorkload::new(TpchConfig::tiny());
        // A near-empty compressed pool makes dirty evictions fail, so
        // allocations starve until the OOM killer frees a task's RSS.
        let faults = FaultConfig {
            zram_capacity_bytes: Some(64 * 1024),
            oom_after_stalls: Some(16),
            ..FaultConfig::none()
        };
        let m = Kernel::build(
            &cfg(PolicyChoice::Clock, SwapChoice::Zram, 0.5).faults(faults),
            &w,
            1,
        )
        .run();
        assert!(m.oom_kills > 0, "pool exhaustion must trigger OOM");
        assert!(m.kill_freed_frames > 0);
        assert!(m.swap_stats.pool_rejections > 0);
        assert_eq!(m.error, None, "OOM must resolve the livelock");
    }

    #[test]
    fn faulty_runs_are_deterministic_per_seed() {
        let w = TpchWorkload::new(TpchConfig::tiny());
        let faults = FaultConfig {
            plan: FaultPlan {
                error_rate: 0.02,
                stall: Some(StallPlan {
                    first_onset: 10 * MILLISECOND,
                    period: 100 * MILLISECOND,
                    onset_jitter: 5 * MILLISECOND,
                    duration: 20 * MILLISECOND,
                    duration_jitter: 5 * MILLISECOND,
                }),
                ..FaultPlan::none()
            },
            oom_after_stalls: Some(64),
            ..FaultConfig::none()
        };
        let c = cfg(PolicyChoice::MgLruDefault, SwapChoice::Ssd, 0.5).faults(faults);
        let a = Kernel::build(&c, &w, 5).run();
        let b = Kernel::build(&c, &w, 5).run();
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "faulty run must replay");
    }

    #[test]
    fn pressure_steps_take_and_return_frames() {
        use pagesim_engine::PressureStep;
        let w = TpchWorkload::new(TpchConfig::tiny());
        let faults = FaultConfig {
            plan: FaultPlan {
                // Inflate at t=0: at full capacity ratio the app itself
                // would otherwise touch every frame within the first
                // millisecond, leaving nothing free to take.
                pressure: vec![PressureStep {
                    at: 0,
                    frac: 0.25,
                    duration: SECOND,
                }],
                ..FaultPlan::none()
            },
            ..FaultConfig::none()
        };
        // Full-capacity run: without pressure there would be no reclaim
        // at all, so any eviction activity is the balloon's doing.
        let m = Kernel::build(
            &cfg(PolicyChoice::Clock, SwapChoice::Zram, 1.0).faults(faults),
            &w,
            1,
        )
        .run();
        assert!(m.pressure_frames_taken > 0, "balloon never inflated");
        assert_eq!(m.error, None);
    }
}
