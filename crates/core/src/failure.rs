//! Typed failure records for the sweep execution layer.
//!
//! A figure sweep runs thousands of independent trials; PR 1 taught the
//! *simulation* to degrade instead of panic ([`SimError`]), and this module
//! gives the *harness* the matching vocabulary: when a trial cannot produce
//! metrics at all — it panicked on every attempt, or blew a sim-time budget
//! — the sweep records a [`CellFailure`] instead of aborting, and the
//! figure layer renders an explicit hole for the lost cell.

use crate::experiments::Wl;
use crate::kernel::SimError;

/// Why a trial (and therefore its cell) produced no usable metrics.
///
/// Note the asymmetry with [`SimError`]: a trial whose metrics merely
/// *carry* a `SimError` still merges into its cell (the fault experiments
/// depend on degraded trials being plotted); `FailureKind::Sim` is reserved
/// for trials whose metrics were unusable end-to-end. Panics and budget
/// trips never merge.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FailureKind {
    /// The trial panicked on every allowed attempt; the payload is the
    /// panic message of the final attempt.
    Panic(String),
    /// The trial's metrics were rejected with a simulation error.
    Sim(SimError),
    /// The trial exceeded the sweep's deterministic sim-time budget
    /// (`SweepOptions::trial_budget`), so its truncated metrics were
    /// discarded rather than merged.
    Timeout,
}

impl FailureKind {
    /// Stable machine-readable classification, used by the run journal and
    /// the failure report.
    pub fn label(&self) -> &'static str {
        match self {
            FailureKind::Panic(_) => "panic",
            FailureKind::Sim(_) => "sim-error",
            FailureKind::Timeout => "timeout",
        }
    }

    /// One-line human-readable detail.
    pub fn detail(&self) -> String {
        match self {
            FailureKind::Panic(msg) => format!("panic: {msg}"),
            FailureKind::Sim(e) => format!("sim error: {}", e.name()),
            FailureKind::Timeout => "sim-time budget exceeded".to_owned(),
        }
    }
}

/// A cell the sweep could not complete: at least one of its trials ended
/// in a [`FailureKind`] after all retries. Carries the cell's content key
/// (`wl` + `config_hash`) so the figure layer can match the hole back to
/// every figure that references the cell.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CellFailure {
    /// Workload of the failed cell.
    pub wl: Wl,
    /// Stable hash of the cell's fully-resolved `SystemConfig` (the second
    /// component of `CellQuery::content_key`).
    pub config_hash: u64,
    /// Human-readable cell identity, as used by cache files and logs.
    pub ident: String,
    /// Why the cell's trial(s) failed (first failing trial wins).
    pub kind: FailureKind,
    /// Attempts spent on the failing trial before giving up.
    pub attempts: u32,
}

impl std::fmt::Display for CellFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [{:016x}]: {} after {} attempt(s)",
            self.ident,
            self.config_hash,
            self.kind.detail(),
            self.attempts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(FailureKind::Panic(String::new()).label(), "panic");
        assert_eq!(FailureKind::Sim(SimError::Deadlock).label(), "sim-error");
        assert_eq!(FailureKind::Timeout.label(), "timeout");
    }

    #[test]
    fn display_carries_ident_kind_and_attempts() {
        let f = CellFailure {
            wl: Wl::Tpch,
            config_hash: 0xABCD,
            ident: "tpch/clock/Ssd/r0.50".to_owned(),
            kind: FailureKind::Panic("boom".to_owned()),
            attempts: 3,
        };
        let s = f.to_string();
        assert!(s.contains("tpch/clock/Ssd/r0.50"), "{s}");
        assert!(s.contains("panic: boom"), "{s}");
        assert!(s.contains("3 attempt(s)"), "{s}");
    }
}
