//! # pagesim
//!
//! A deterministic user-space reproduction of the system studied in
//! *"Characterizing Emerging Page Replacement Policies for Memory-Intensive
//! Applications"* (IISWC 2024): the Linux paging stack — Clock-LRU and
//! Multi-Generational LRU — driven by memory-intensive workloads over SSD
//! and ZRAM swap.
//!
//! The crate glues the substrates together into a simulated kernel and an
//! experiment harness:
//!
//! * [`Kernel`] — the system model: MMU touch path (accessed/dirty bits),
//!   demand faults, swap-in/out with write-back pinning, a kswapd-analog
//!   background reclaim thread, the MG-LRU aging thread, and CPU
//!   scheduling of application plus kernel threads over a fixed core
//!   count. One [`Kernel::run`] is one workload execution ("one reboot" in
//!   the paper's methodology).
//! * [`SystemConfig`] — the experimental axes of the paper: replacement
//!   policy (and MG-LRU variant), memory capacity-to-footprint ratio, and
//!   swap medium.
//! * [`RunMetrics`] — everything the figures need: runtime, fault counts,
//!   tail-latency histograms, scan/CPU accounting.
//! * [`experiments`] — one driver per figure of the paper (Fig. 1–12),
//!   producing the same normalized series the paper plots.
//!
//! ## Quick start
//!
//! ```rust
//! use pagesim::{Experiment, PolicyChoice, SwapChoice, SystemConfig};
//! use pagesim_workloads::tpch::{TpchConfig, TpchWorkload};
//!
//! let workload = TpchWorkload::new(TpchConfig::tiny());
//! let config = SystemConfig::new(PolicyChoice::MgLruDefault, SwapChoice::Zram)
//!     .capacity_ratio(0.5);
//! let metrics = Experiment::new(config).run(&workload, /*trial seed*/ 1);
//! assert!(metrics.major_faults > 0); // 50% ratio forces paging
//! ```


pub mod benchcounters;
mod config;
pub mod experiments;
mod failure;
mod kernel;
mod mem_state;
mod metrics;
pub mod report;
pub mod stablehash;
pub mod workingset;

pub use config::{AppCosts, FaultConfig, PolicyChoice, SwapChoice, SystemConfig};
pub use failure::{CellFailure, FailureKind};
pub use kernel::{Kernel, SimError};
pub use metrics::{Experiment, RunMetrics, TrialSet, CACHE_FORMAT_VERSION};
pub use stablehash::StableHasher;
