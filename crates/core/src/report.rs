//! Plain-text report formatting for the figure harnesses.

use pagesim_stats::Summary;

/// A simple aligned text table.
///
/// ```rust
/// use pagesim::report::Table;
/// let mut t = Table::new(&["workload", "clock", "mglru"]);
/// t.row(&["tpch".into(), "1.00".into(), "0.82".into()]);
/// let s = t.render();
/// assert!(s.contains("tpch"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a ratio like the paper's normalized bars.
pub fn ratio(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a summary as `mean ± std [min, max]`.
pub fn summary_line(s: &Summary) -> String {
    format!(
        "{:.3} ± {:.3} [{:.3}, {:.3}]",
        s.mean, s.std, s.min, s.max
    )
}

/// Formats nanoseconds as a human latency.
pub fn latency(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Marker line for a figure whose cell was lost to a sweep failure. Holes
/// are rendered *instead of* the figure body so a degraded run can never be
/// mistaken for a complete one: every line is `#`-prefixed (comment
/// convention of the figure stream) and names the missing cell and cause.
pub fn hole_line(fig: &str, ident: &str, why: &str) -> String {
    format!("# HOLE {fig}: cell {ident} unavailable ({why})")
}

/// Banner printed once at the top of a figure stream that contains holes.
pub fn incomplete_banner(failed_cells: usize) -> String {
    format!(
        "# INCOMPLETE SWEEP: {failed_cells} cell(s) failed; affected figures \
         are rendered as holes, not data"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hole_lines_are_comment_prefixed() {
        let h = hole_line("fig7", "tpch/clock/Ssd/r0.75", "panic: boom");
        assert!(h.starts_with("# HOLE fig7"), "{h}");
        assert!(h.contains("tpch/clock/Ssd/r0.75"), "{h}");
        assert!(incomplete_banner(2).starts_with("# INCOMPLETE SWEEP: 2"));
    }

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(&["xxxxx".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let mut t = Table::new(&["a"]);
        t.row(&["1".into(), "2".into()]);
    }

    #[test]
    fn latency_units() {
        assert_eq!(latency(900), "900ns");
        assert_eq!(latency(1_500), "1.50us");
        assert_eq!(latency(2_500_000), "2.50ms");
        assert_eq!(latency(3_000_000_000), "3.00s");
    }
}
