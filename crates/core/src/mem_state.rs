//! The kernel's memory-side state, exposed to policies as
//! [`MemView`](pagesim_policy::MemView).

use pagesim_mem::{
    AddressSpace, AsId, LineIdx, PageArena, PageInfo, PageKey, PhysMem, RegionIdx, Vpn,
    WORDS_PER_REGION,
};
use pagesim_policy::MemView;
use pagesim_swap::SwapSlot;

use crate::benchcounters;

/// Address spaces, page tables, frame pool, and swap-cache bookkeeping.
#[derive(Debug)]
pub struct MemState {
    pub(crate) spaces: Vec<AddressSpace>,
    pub(crate) arena: PageArena,
    pub(crate) phys: PhysMem,
    /// Valid swap-slot backing for resident pages (swap-cache analog):
    /// a clean page with backing can be evicted without a write.
    pub(crate) backing: Vec<Option<SwapSlot>>,
    /// Whether the page has ever been evicted — a later fault is a
    /// *refault* (drives MG-LRU's tier accounting; the kernel's shadow
    /// entries play this role).
    pub(crate) evicted_before: Vec<bool>,
}

impl MemState {
    pub(crate) fn new(spaces: Vec<AddressSpace>, arena: PageArena, phys: PhysMem) -> Self {
        let pages = arena.len();
        MemState {
            spaces,
            arena,
            phys,
            backing: vec![None; pages],
            evicted_before: vec![false; pages],
        }
    }

    pub(crate) fn space(&self, id: AsId) -> &AddressSpace {
        &self.spaces[id.0 as usize]
    }

    pub(crate) fn space_mut(&mut self, id: AsId) -> &mut AddressSpace {
        &mut self.spaces[id.0 as usize]
    }

    pub(crate) fn locate(&self, key: PageKey) -> (AsId, Vpn) {
        let info = self.arena.info(key);
        (info.as_id, info.vpn)
    }

    /// Total resident pages across spaces (diagnostics).
    #[cfg(any(test, feature = "sanitize"))]
    pub(crate) fn resident_pages(&self) -> u32 {
        self.spaces.iter().map(AddressSpace::resident_pages).sum()
    }
}

impl MemView for MemState {
    fn total_pages(&self) -> u32 {
        self.arena.len() as u32
    }

    fn page_info(&self, key: PageKey) -> PageInfo {
        self.arena.info(key)
    }

    fn is_resident(&self, key: PageKey) -> bool {
        let (s, vpn) = self.locate(key);
        self.space(s).pte(vpn).present()
    }

    fn is_dirty(&self, key: PageKey) -> bool {
        let (s, vpn) = self.locate(key);
        self.space(s).pte(vpn).dirty()
    }

    fn rmap_test_clear_accessed(&mut self, key: PageKey) -> bool {
        let (s, vpn) = self.locate(key);
        self.space_mut(s).test_and_clear_accessed(vpn)
    }

    fn scan_region(
        &mut self,
        space: AsId,
        region: RegionIdx,
        words: &mut [u64; WORDS_PER_REGION],
    ) -> u32 {
        let _t = benchcounters::time_aging_scan();
        let examined = self.space_mut(space).scan_region(region, words);
        benchcounters::add_aging_scan_ptes(examined as u64);
        examined
    }

    fn scan_line_mask(&mut self, space: AsId, line: LineIdx) -> (u8, u32) {
        let _t = benchcounters::time_evict_scan();
        let (mask, examined) = self.space_mut(space).scan_line_mask(line);
        benchcounters::add_evict_scan_ptes(examined as u64);
        (mask, examined)
    }

    fn key_at(&self, space: AsId, vpn: Vpn) -> PageKey {
        self.space(space).key_of(vpn)
    }

    fn space_count(&self) -> u16 {
        self.spaces.len() as u16
    }

    fn region_count(&self, space: AsId) -> u32 {
        self.space(space).regions()
    }

    fn region_present_count(&self, space: AsId, region: RegionIdx) -> u32 {
        self.space(space).region_present_count(region)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagesim_mem::Watermarks;

    fn state() -> MemState {
        let mut arena = PageArena::new();
        let s0 = AddressSpace::new(AsId(0), 100, &mut arena);
        let s1 = AddressSpace::new(AsId(1), 50, &mut arena);
        let phys = PhysMem::new(64, Watermarks::for_capacity(64));
        MemState::new(vec![s0, s1], arena, phys)
    }

    #[test]
    fn keys_span_spaces() {
        let m = state();
        assert_eq!(m.total_pages(), 150);
        assert_eq!(m.locate(120), (AsId(1), 20));
        assert_eq!(m.key_at(AsId(1), 20), 120);
        assert_eq!(m.space_count(), 2);
    }

    #[test]
    fn scan_masks_map_to_global_keys_via_key_at() {
        let mut m = state();
        let frame = m.phys.allocate(101).unwrap();
        m.space_mut(AsId(1)).map(1, frame);
        m.space_mut(AsId(1)).mark_accessed(1, false);
        let (mask, examined) = m.scan_line_mask(AsId(1), 0);
        assert_eq!((mask, examined), (1 << 1, 8));
        assert_eq!(m.key_at(AsId(1), 1), 101);
        assert!(!m.space(AsId(1)).pte(1).accessed(), "scan clears the bit");
        // region scan on the other space: vpn 1 of space 1 is untouched
        m.space_mut(AsId(1)).mark_accessed(1, false);
        let mut words = [0u64; WORDS_PER_REGION];
        let examined = m.scan_region(AsId(0), 0, &mut words);
        assert_eq!(examined, 100);
        assert_eq!(words, [0u64; WORDS_PER_REGION]);
        let examined = m.scan_region(AsId(1), 0, &mut words);
        assert_eq!(examined, 50);
        assert_eq!(words[0], 1 << 1);
    }

    #[test]
    fn rmap_probe_roundtrip() {
        let mut m = state();
        let frame = m.phys.allocate(5).unwrap();
        m.space_mut(AsId(0)).map(5, frame);
        assert!(m.is_resident(5));
        assert!(!m.rmap_test_clear_accessed(5));
        m.space_mut(AsId(0)).mark_accessed(5, true);
        assert!(m.is_dirty(5));
        assert!(m.rmap_test_clear_accessed(5));
        assert!(!m.rmap_test_clear_accessed(5));
        assert_eq!(m.resident_pages(), 1);
    }
}
