//! Shadow-entry bookkeeping — the `mm/workingset.c` analog.
//!
//! When the kernel evicts a page, Linux leaves a *shadow entry* in the
//! page-cache radix slot recording the eviction "clock" (an eviction
//! counter). A later refault reads the entry back and computes the
//! *refault distance*: how many evictions happened while the page was
//! out. A distance within one memory-capacity of evictions means the
//! page would have stayed resident had the list been larger — Linux
//! activates such pages immediately (`workingset_activate`).
//!
//! Here the arena is a flat table indexed by the global [`PageKey`],
//! preallocated at kernel construction to exactly one slot per page —
//! the same bound the real radix tree enjoys (one shadow per slot) —
//! so recording and taking entries never allocates on the fault path.

use pagesim_engine::Nanos;
use pagesim_mem::PageKey;

/// One recorded eviction: when it happened and the eviction counter at
/// that point (the `workingset.c` "eviction clock").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShadowEntry {
    /// Simulated time of the eviction.
    pub evicted_at: Nanos,
    /// Global eviction count at eviction (distance = now − this).
    pub eviction_seq: u64,
}

/// Bounded shadow-entry arena: at most one live entry per page, stored
/// in a flat preallocated table keyed by [`PageKey`]. No growth after
/// construction.
#[derive(Debug)]
pub struct ShadowArena {
    slots: Vec<Option<ShadowEntry>>,
    live: u64,
}

impl ShadowArena {
    /// An arena with one slot per page; allocates once, up front.
    pub fn new(pages: usize) -> Self {
        ShadowArena {
            slots: vec![None; pages],
            live: 0,
        }
    }

    /// Records an eviction shadow for `key`, replacing any stale entry
    /// (a page re-evicted without refaulting keeps only the newest).
    pub fn record(&mut self, key: PageKey, evicted_at: Nanos, eviction_seq: u64) {
        let slot = &mut self.slots[key as usize];
        if slot.is_none() {
            self.live += 1;
        }
        *slot = Some(ShadowEntry {
            evicted_at,
            eviction_seq,
        });
    }

    /// Consumes the shadow for `key` on refault, if one is live.
    pub fn take(&mut self, key: PageKey) -> Option<ShadowEntry> {
        let e = self.slots[key as usize].take();
        if e.is_some() {
            self.live -= 1;
        }
        e
    }

    /// Drops the shadow for `key` without a refault (task kill — the
    /// `workingset_nodereclaim` path). Returns whether one was live.
    pub fn reclaim(&mut self, key: PageKey) -> bool {
        let e = self.slots[key as usize].take();
        if e.is_some() {
            self.live -= 1;
        }
        e.is_some()
    }

    /// Live shadow entries.
    pub fn len(&self) -> u64 {
        self.live
    }

    /// Whether no shadow entries are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The configured bound: one slot per page, fixed at construction.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_take_roundtrip() {
        let mut a = ShadowArena::new(8);
        assert!(a.is_empty());
        a.record(3, 100, 7);
        assert_eq!(a.len(), 1);
        assert_eq!(
            a.take(3),
            Some(ShadowEntry {
                evicted_at: 100,
                eviction_seq: 7
            })
        );
        assert_eq!(a.take(3), None);
        assert!(a.is_empty());
    }

    #[test]
    fn re_eviction_replaces_without_growing() {
        let mut a = ShadowArena::new(4);
        a.record(1, 10, 1);
        a.record(1, 20, 2);
        assert_eq!(a.len(), 1);
        assert_eq!(a.take(1).unwrap().eviction_seq, 2);
    }

    #[test]
    fn reclaim_drops_silently() {
        let mut a = ShadowArena::new(4);
        a.record(2, 5, 1);
        assert!(a.reclaim(2));
        assert!(!a.reclaim(2));
        assert_eq!(a.take(2), None);
        assert_eq!(a.capacity(), 4);
    }
}
