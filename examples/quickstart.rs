//! Quickstart: run one workload execution under MG-LRU and inspect the
//! metrics the paper's figures are built from.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pagesim::{Experiment, PolicyChoice, SwapChoice, SystemConfig};
use pagesim_workloads::tpch::{TpchConfig, TpchWorkload};
use pagesim_workloads::Workload;

fn main() {
    // A Spark-SQL-style TPC-H workload at a reduced footprint.
    let workload = TpchWorkload::new(TpchConfig::default().scaled(0.25));
    println!(
        "workload: {} ({} pages ≈ {} MiB footprint)",
        workload.name(),
        workload.footprint_pages(),
        workload.footprint_pages() / 256
    );

    // The paper's headline configuration: MG-LRU, SSD swap, memory
    // capacity at 50% of the footprint.
    let config =
        SystemConfig::new(PolicyChoice::MgLruDefault, SwapChoice::Ssd).capacity_ratio(0.5);
    let metrics = Experiment::new(config).run(&workload, /*trial seed*/ 1);

    println!("runtime:        {:.2}s simulated", metrics.runtime_secs());
    println!("major faults:   {}", metrics.major_faults);
    println!("minor faults:   {}", metrics.minor_faults);
    println!(
        "evictions:      {} ({} clean drops)",
        metrics.evictions, metrics.clean_drops
    );
    println!("swap-outs:      {}", metrics.swap_outs);
    println!("aging passes:   {}", metrics.policy.aging_passes);
    println!("PTEs scanned:   {}", metrics.policy.pte_scans);
    println!("rmap walks:     {}", metrics.policy.rmap_walks);
    println!(
        "CPU:            app {:.2}s, kernel threads {:.2}s",
        metrics.app_cpu_ns as f64 / 1e9,
        metrics.kernel_cpu_ns as f64 / 1e9
    );
}
