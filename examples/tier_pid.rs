//! Exercise MG-LRU's file-page tiers and PID refault controller — the
//! machinery the paper describes in §III-D but leaves unstressed because
//! its workloads do little buffered I/O.
//!
//! The buffered-I/O workload streams a large file while re-reading a hot
//! subset through file descriptors. With the PID controller, refaults on
//! the hot subset push its tier's refault rate above the base tier's and
//! eviction starts protecting it; with the controller effectively
//! disabled (zero gains), the streaming pass keeps flushing the hot set.
//!
//! ```sh
//! cargo run --release --example tier_pid
//! ```

use pagesim::{Experiment, PolicyChoice, SwapChoice, SystemConfig};
use pagesim_policy::MgLruConfig;
use pagesim_workloads::buffered::{BufferedIoConfig, BufferedIoWorkload};

fn main() {
    let workload = BufferedIoWorkload::new(BufferedIoConfig::default());

    let with_pid = PolicyChoice::MgLruCustom(MgLruConfig::kernel_default());
    let without_pid = PolicyChoice::MgLruCustom(MgLruConfig {
        pid_gains: (0.0, 0.0, 0.0), // controller output pinned at 0: no tier protection
        ..MgLruConfig::kernel_default()
    });

    for (label, policy) in [("pid on", with_pid), ("pid off", without_pid)] {
        let config = SystemConfig::new(policy, SwapChoice::Ssd).capacity_ratio(0.5);
        let set = Experiment::new(config).run_trials(&workload, 21, 5);
        let rt = set.runtime_summary();
        let faults = set.fault_summary();
        let protected: u64 = set.runs.iter().map(|r| r.policy.tier_protected).sum();
        println!(
            "{label:8} runtime {:.2}s ± {:.2}  faults {:>8.0}  tier-protected pages {}",
            rt.mean, rt.std, faults.mean, protected
        );
    }
    println!(
        "\nWith the controller on, hot fd-read pages are held in protected\n\
         tiers and survive the streaming pass (fewer faults, non-zero\n\
         protected count)."
    );
}
