//! Sweep the paper's MG-LRU parameter variants (Gen-14, Scan-All,
//! Scan-None, Scan-Rand) on TPC-H — Fig. 4's experiment — plus a custom
//! configuration showing how to explore beyond the paper's grid.
//!
//! ```sh
//! cargo run --release --example tuning_mglru
//! ```

use pagesim::{Experiment, PolicyChoice, SwapChoice, SystemConfig};
use pagesim_policy::{MgLruConfig, ScanMode};
use pagesim_workloads::tpch::{TpchConfig, TpchWorkload};

fn main() {
    let workload = TpchWorkload::new(TpchConfig::default().scaled(0.5));
    let trials = 8;

    let mut base_mean = None;
    let custom = PolicyChoice::MgLruCustom(MgLruConfig {
        // An aggressive exploration point: probabilistic scanning with a
        // lower bloom-insert threshold and no eviction lookaround.
        scan_mode: ScanMode::Rand(0.25),
        spatial_scan: false,
        ..MgLruConfig::kernel_default()
    });

    let mut policies = PolicyChoice::mglru_variants().to_vec();
    policies.push(custom);

    println!("{:<14} {:>10} {:>10} {:>12}", "variant", "runtime", "vs def", "faults");
    for policy in policies {
        let config = SystemConfig::new(policy, SwapChoice::Ssd).capacity_ratio(0.5);
        let set = Experiment::new(config).run_trials(&workload, 11, trials);
        let rt = set.runtime_summary();
        let base = *base_mean.get_or_insert(rt.mean);
        println!(
            "{:<14} {:>9.2}s {:>9.3}x {:>12.0}",
            policy.label(),
            rt.mean,
            rt.mean / base,
            set.fault_summary().mean,
        );
    }
    println!(
        "\nThe paper's point (Fig. 4): no configuration is best everywhere —\n\
         re-run this sweep with a different workload and the ordering moves."
    );
}
