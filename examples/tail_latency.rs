//! YCSB tail latencies across policies and swap media (Fig. 3 vs Fig. 12).
//!
//! The paper's most striking inversion: with SSD swap MG-LRU trades read
//! tails for write tails, but with ZRAM swap Clock strictly wins the
//! tails. This example reproduces both cells for YCSB-B.
//!
//! ```sh
//! cargo run --release --example tail_latency
//! ```

use pagesim::{Experiment, PolicyChoice, SwapChoice, SystemConfig};
use pagesim_workloads::ycsb::{YcsbConfig, YcsbMix, YcsbWorkload};

fn main() {
    let mut cfg = YcsbConfig::with_mix(YcsbMix::B);
    cfg.items /= 2;
    cfg.requests /= 2;
    let workload = YcsbWorkload::new(cfg, 42);

    for swap in [SwapChoice::Ssd, SwapChoice::Zram] {
        println!("== swap medium: {} ==", swap.label());
        for policy in [PolicyChoice::Clock, PolicyChoice::MgLruDefault] {
            let config = SystemConfig::new(policy, swap).capacity_ratio(0.5);
            let set = Experiment::new(config).run_trials(&workload, 3, 5);
            let reads = set.merged_read_latency();
            let writes = set.merged_write_latency();
            println!("  {}:", policy.label());
            print!("    reads  ");
            for (p, v) in reads.tail_profile() {
                print!("p{p}: {}  ", pagesim::report::latency(v));
            }
            println!();
            if writes.count() > 0 {
                print!("    writes ");
                for (p, v) in writes.tail_profile() {
                    print!("p{p}: {}  ", pagesim::report::latency(v));
                }
                println!();
            }
        }
        println!();
    }
}
