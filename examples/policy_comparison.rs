//! Clock vs MG-LRU on PageRank: reproduce the paper's headline variance
//! observation (Fig. 2b) — Clock's runtime distribution is tight while
//! MG-LRU's is wide, even when MG-LRU's mean is at least as good.
//!
//! ```sh
//! cargo run --release --example policy_comparison
//! ```

use pagesim::{Experiment, PolicyChoice, SwapChoice, SystemConfig};
use pagesim_stats::linear_regression;
use pagesim_workloads::pagerank::{PageRankConfig, PageRankWorkload};

fn main() {
    let trials = 10;
    let workload = PageRankWorkload::new(PageRankConfig::default().scaled(0.5), 42);

    for policy in [PolicyChoice::Clock, PolicyChoice::MgLruDefault] {
        let config = SystemConfig::new(policy, SwapChoice::Ssd).capacity_ratio(0.5);
        let set = Experiment::new(config).run_trials(&workload, 7, trials);
        let rt = set.runtime_summary();
        let faults = set.fault_summary();
        let reg = linear_regression(&set.faults(), &set.runtimes());
        println!("policy: {}", policy.label());
        println!("  runtime: mean {:.2}s  std {:.3}s  [{:.2}, {:.2}]", rt.mean, rt.std, rt.min, rt.max);
        println!("  faults:  mean {:.0}  std {:.0}", faults.mean, faults.std);
        println!("  faults↔runtime r²: {:.3}", reg.r_squared);
        println!("  per-trial runtimes:");
        for (i, r) in set.runtimes().iter().enumerate() {
            println!("    trial {i:2}: {r:7.2}s  {:8.0} faults", set.faults()[i]);
        }
        println!();
    }
    println!(
        "Expectation (paper Fig. 2b): Clock's spread is tight; MG-LRU's is\n\
         several times wider because aging-walk timing interacts with the\n\
         iteration phase — the same mechanism this simulator models."
    );
}
