//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the one entry point it uses: `crossbeam::scope`, implemented over
//! `std::thread::scope` (stable since 1.63). The closure signature matches
//! crossbeam's — spawned closures receive the scope handle so they could
//! spawn nested threads — and `scope` returns `Err` if any spawned thread
//! panicked, like the original.

#![forbid(unsafe_code)]

use std::panic::{catch_unwind, AssertUnwindSafe};

/// Handle for spawning threads inside a [`scope`] call.
pub struct Scope<'scope, 'env> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread; it is joined before [`scope`] returns.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || f(&Scope { inner }))
    }
}

/// Runs `f` with a scope handle; all spawned threads are joined before
/// this returns. `Err` carries the payload of the first panic observed
/// (from a spawned thread or from `f` itself).
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn scoped_threads_see_borrowed_state() {
        let counter = AtomicU32::new(0);
        let out = super::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
            7u32
        });
        assert_eq!(out.unwrap(), 7);
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn panics_surface_as_err() {
        let out = super::scope(|s| {
            s.spawn(|_| panic!("worker died"));
        });
        assert!(out.is_err());
    }
}
