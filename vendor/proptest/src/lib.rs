//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of proptest the tests use: the `proptest!` macro over
//! strategies built from ranges, `any::<T>()`, tuples, and
//! `prop::collection::vec`, plus the `prop_assert*`/`prop_assume!`
//! macros. Cases are generated from a seed derived from the test name, so
//! failures replay deterministically. There is no shrinking: a failing
//! case is reported with its case index instead.

#![forbid(unsafe_code)]

pub mod strategy {
    use std::ops::{Range, RangeInclusive};

    /// Deterministic generator state for one test function.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from an arbitrary label (the test name).
        pub fn from_label(label: &str) -> TestRng {
            let mut state = 0xcbf2_9ce4_8422_2325u64;
            for b in label.bytes() {
                state ^= b as u64;
                state = state.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state }
        }

        /// Next word of the stream (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Generates values of `Value` for test cases.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_strategy_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as u128) - (lo as u128) + 1;
                    if span > u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.next_u64() % span as u64) as $t
                }
            }
        )*};
    }
    impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_strategy_tuple {
        ($($name:ident),*) => {
            impl<$($name: Strategy),*> Strategy for ($($name,)*) {
                type Value = ($($name::Value,)*);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)*) = self;
                    ($($name.generate(rng),)*)
                }
            }
        };
    }
    impl_strategy_tuple!(A);
    impl_strategy_tuple!(A, B);
    impl_strategy_tuple!(A, B, C);
    impl_strategy_tuple!(A, B, C, D);
    impl_strategy_tuple!(A, B, C, D, E);
    impl_strategy_tuple!(A, B, C, D, E, F);
}

pub mod arbitrary {
    use super::strategy::{Strategy, TestRng};
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value from the type's full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite values only: a sign, a wide exponent, a mantissa.
            let m = rng.next_f64() * 2.0 - 1.0;
            let e = (rng.next_u64() % 61) as i32 - 30;
            m * 10f64.powi(e)
        }
    }

    /// Strategy wrapper returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    use super::strategy::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec`: vectors of `element` values.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Cases generated per property (no shrinking, so keep runs fast).
    pub const CASES: u32 = 48;

    /// The per-case verdict the `proptest!` closure returns.
    pub type CaseResult = Result<(), String>;
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut rng = $crate::strategy::TestRng::from_label(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..$crate::test_runner::CASES {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                let result: $crate::test_runner::CaseResult = (move || {
                    $body
                    Ok(())
                })();
                if let Err(msg) = result {
                    panic!(
                        "proptest {} failed at case {case}/{}: {msg}",
                        stringify!($name),
                        $crate::test_runner::CASES,
                    );
                }
            }
        }
    )*};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!($($fmt)+));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {left:?}\n right: {right:?}",
                stringify!($left),
                stringify!($right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err(format!($($fmt)+));
        }
    }};
}

/// Fails the current case unless the two values differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return Err(format!(
                "assertion failed: {} != {}\n  both: {left:?}",
                stringify!($left),
                stringify!($right),
            ));
        }
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Ok(());
        }
    };
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespaced strategy modules (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vecs_generate_in_bounds(
            x in 10u32..20,
            v in prop::collection::vec((0u8..4, any::<bool>()), 1..50),
        ) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 50);
            for (op, _) in v {
                prop_assert!(op < 4);
            }
        }

        #[test]
        fn assume_skips_cases(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn generation_is_deterministic_per_label() {
        use crate::strategy::{Strategy, TestRng};
        let mut a = TestRng::from_label("x");
        let mut b = TestRng::from_label("x");
        let mut c = TestRng::from_label("y");
        let s = 0u64..1_000_000;
        let va: Vec<u64> = (0..50).map(|_| s.clone().generate(&mut a)).collect();
        let vb: Vec<u64> = (0..50).map(|_| s.clone().generate(&mut b)).collect();
        let vc: Vec<u64> = (0..50).map(|_| s.clone().generate(&mut c)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }
}
