//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of the criterion API its benches use: `Criterion` with
//! `bench_function`/`benchmark_group`, `Bencher::iter`/`iter_batched`,
//! `BatchSize`, and the `criterion_group!`/`criterion_main!` macros.
//! Instead of statistical sampling it runs each routine a fixed number of
//! iterations and prints mean wall-clock time — enough to compare runs by
//! hand and, more importantly, to keep `cargo test`/`cargo bench` targets
//! compiling and running without the real dependency.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How per-iteration setup data is batched (accepted for API parity; the
/// stand-in runs every routine with a fresh setup value regardless).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup values, many per batch.
    SmallInput,
    /// Large setup values, one batch per sample.
    LargeInput,
    /// One setup value per iteration.
    PerIteration,
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with untimed per-iteration `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

fn run_one(label: &str, iters: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean = if b.iters == 0 {
        Duration::ZERO
    } else {
        b.elapsed / b.iters as u32
    };
    println!("bench {label}: {mean:?}/iter over {iters} iters");
}

/// Named group of benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Sets how many iterations each routine runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: AsRef<str>,
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.as_ref());
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Ends the group (no-op; exists for API parity).
    pub fn finish(&mut self) {
        let _ = &self.criterion;
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Accepted for API parity; the stand-in's iteration count is fixed
    /// by `sample_size`, not wall-clock budget.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for API parity; the stand-in does not warm up.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Sets how many iterations each routine runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n as u64;
        self
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: AsRef<str>,
        F: FnMut(&mut Bencher),
    {
        run_one(id.as_ref(), self.sample_size, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            name: name.to_string(),
            criterion: self,
            sample_size,
        }
    }
}

/// Bundles benchmark functions under a runner fn, like upstream.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` running each group, like upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_routines_the_configured_number_of_times() {
        let mut calls = 0u64;
        let mut c = Criterion::default().sample_size(5);
        c.bench_function("count", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 5);
    }

    #[test]
    fn iter_batched_gets_fresh_setup_each_iteration() {
        let mut setups = 0u64;
        let mut c = Criterion::default().sample_size(4);
        let mut g = c.benchmark_group("g");
        g.sample_size(4).bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    setups
                },
                |v| v * 2,
                BatchSize::LargeInput,
            )
        });
        g.finish();
        assert_eq!(setups, 4);
    }
}
