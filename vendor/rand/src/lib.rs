//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the *subset* of the `rand` 0.10 API it actually uses: `SmallRng`,
//! `SeedableRng::seed_from_u64`, the `RngExt` sampling methods, and
//! `seq::SliceRandom::shuffle`. The generator is xoshiro256++ seeded via
//! splitmix64 — a different stream than upstream `SmallRng`, which is fine
//! because every consumer treats the stream as an opaque deterministic
//! function of its seed.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++: small, fast, and plenty for simulation seeding.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut z = state;
            let mut s = [0u64; 4];
            for w in &mut s {
                z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
                *w = splitmix64(z);
            }
            // All-zero state would be a fixed point; splitmix of any seed
            // cannot produce four zero words, but guard anyway.
            if s == [0; 4] {
                s[0] = 1;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [mut s0, mut s1, mut s2, mut s3] = self.s;
            let result = s0
                .wrapping_add(s3)
                .rotate_left(23)
                .wrapping_add(s0);
            let t = s1 << 17;
            s2 ^= s0;
            s3 ^= s1;
            s1 ^= s2;
            s0 ^= s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.s = [s0, s1, s2, s3];
            result
        }
    }
}

/// Types samplable uniformly from the full stream.
pub trait Sample: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl Sample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Sample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Sample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Sample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

/// Ranges samplable uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span as u64) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// The sampling interface (`rand` 0.10 names).
pub trait RngExt: RngCore {
    /// Uniform value of `T` over its natural domain.
    fn random<T: Sample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform value in `range`.
    fn random_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Rg: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore> RngExt for R {}

pub mod seq {
    use super::RngCore;

    /// Slice shuffling.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn streams_replay_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let sa: Vec<u64> = (0..32).map(|_| a.random()).collect();
        let sb: Vec<u64> = (0..32).map(|_| b.random()).collect();
        let sc: Vec<u64> = (0..32).map(|_| c.random()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u32 = r.random_range(10u32..20);
            assert!((10..20).contains(&v));
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
            let g: f64 = r.random_range(-5.0f64..5.0);
            assert!((-5.0..5.0).contains(&g));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted");
    }
}
