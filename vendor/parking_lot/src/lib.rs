//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the one type it uses: `Mutex` with a `lock()` that never returns a
//! poison error. Backed by `std::sync::Mutex`; poisoning is swallowed the
//! way parking_lot's design does (a panicking holder does not wedge the
//! lock for everyone else).

#![forbid(unsafe_code)]

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion lock with parking_lot's panic-free `lock()` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps `value` in a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    ///
    /// Unlike `std`, a panic in a previous holder does not poison the
    /// lock — the data is handed out regardless, matching parking_lot.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trips_data() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() = 7; // must not panic
        assert_eq!(*m.lock(), 7);
    }
}
