//! # pagesim-repro
//!
//! Umbrella crate for the `pagesim` reproduction of *"Characterizing
//! Emerging Page Replacement Policies for Memory-Intensive Applications"*
//! (IISWC 2024). It hosts the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`), and re-exports the workspace
//! crates for convenience.

pub use pagesim;
pub use pagesim_engine;
pub use pagesim_kv;
pub use pagesim_mem;
pub use pagesim_policy;
pub use pagesim_stats;
pub use pagesim_swap;
pub use pagesim_workloads;
