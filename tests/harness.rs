//! Tests of the figure harness itself: cell caching, figure structure,
//! and cross-figure consistency.

use pagesim::experiments::{fig1, fig10, fig2, fig4, fig9, Bench, Scale, Wl};
use pagesim::{PolicyChoice, SwapChoice};

fn tiny_bench() -> Bench {
    Bench::new(Scale {
        trials: 2,
        footprint: 0.12,
        seed: 7,
        page_compression: None,
    })
}

#[test]
fn cells_are_cached_across_figures() {
    let b = tiny_bench();
    // fig1 and fig2 share the (tpch, clock, ssd, 50%) cell: the second
    // call must return the identical Arc.
    let a = b.cell(Wl::Tpch, PolicyChoice::Clock, SwapChoice::Ssd, 0.5);
    let c = b.cell(Wl::Tpch, PolicyChoice::Clock, SwapChoice::Ssd, 0.5);
    assert!(std::sync::Arc::ptr_eq(&a, &c), "cache miss on identical cell");
    // A different ratio is a different cell.
    let d = b.cell(Wl::Tpch, PolicyChoice::Clock, SwapChoice::Ssd, 0.75);
    assert!(!std::sync::Arc::ptr_eq(&a, &d));
}

#[test]
fn figures_cover_their_declared_grids() {
    let b = tiny_bench();
    let f1 = fig1(&b);
    assert_eq!(f1.rows.len(), 5, "fig1: one row per workload");
    let f2 = fig2(&b);
    assert_eq!(f2.cells.len(), 4, "fig2: 2 workloads x 2 policies");
    for c in &f2.cells {
        assert_eq!(c.points.len(), 2, "one point per trial");
    }
    let f4 = fig4(&b);
    assert_eq!(f4.rows.len(), 25, "fig4: 5 workloads x 5 variants");
    // The baseline rows are exactly 1.0 by construction.
    for wl in Wl::all() {
        let base = f4.perf(wl, PolicyChoice::MgLruDefault).unwrap();
        assert!((base - 1.0).abs() < 1e-12);
    }
}

#[test]
fn fig9_and_fig10_share_cells_and_baselines() {
    let b = tiny_bench();
    let f9 = fig9(&b);
    let f10 = fig10(&b);
    assert_eq!(f9.rows.len(), 30);
    assert_eq!(f10.rows.len(), 30);
    for wl in Wl::all() {
        assert!((f9.norm(wl, PolicyChoice::MgLruDefault).unwrap() - 1.0).abs() < 1e-12);
        assert!((f10.norm(wl, PolicyChoice::MgLruDefault).unwrap() - 1.0).abs() < 1e-12);
        // values are sane positives
        assert!(f9.norm(wl, PolicyChoice::Clock).unwrap() > 0.0);
        assert!(f10.norm(wl, PolicyChoice::Clock).unwrap() > 0.0);
    }
}

#[test]
fn figure_displays_render_tables() {
    let b = tiny_bench();
    let s = fig1(&b).to_string();
    assert!(s.contains("Fig 1"));
    assert!(s.contains("tpch"));
    assert!(s.contains("pagerank"));
    let s = fig2(&b).to_string();
    assert!(s.contains("r2"));
    assert!(s.contains("points"));
}
