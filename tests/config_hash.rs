//! Stable-hash soundness for the cell cache.
//!
//! The sweep executor keys its on-disk cache on
//! `SystemConfig::stable_hash`. That is only safe if the hash changes
//! whenever any semantically meaningful knob changes (else a stale entry
//! would be served for a different experiment) and does *not* change for
//! semantically irrelevant differences (else equivalent cells would never
//! share entries). Both directions are pinned here.

use pagesim::{FaultConfig, PolicyChoice, SwapChoice, SystemConfig};
use pagesim_policy::{MgLruConfig, ScanMode};
use proptest::prelude::*;

fn hash(policy: PolicyChoice, swap: SwapChoice, ratio: f64) -> u64 {
    SystemConfig::new(policy, swap)
        .capacity_ratio(ratio)
        .stable_hash()
}

fn base_hash(cfg: MgLruConfig) -> u64 {
    hash(PolicyChoice::MgLruCustom(cfg), SwapChoice::Ssd, 0.5)
}

/// A bounded-but-varied MG-LRU config from raw proptest scalars.
fn cfg_from(
    max_gens: u32,
    bloom_shift: u32,
    thresh: f64,
    spatial: u32,
    kp: f64,
    mode: u32,
    rand_p: f64,
) -> MgLruConfig {
    let mut c = MgLruConfig::kernel_default();
    c.max_gens = max_gens;
    c.bloom_shift = bloom_shift;
    c.insert_threshold_per_line = thresh;
    c.spatial_scan = spatial.is_multiple_of(2);
    c.pid_gains.0 = kp;
    c.scan_mode = match mode % 4 {
        0 => ScanMode::Bloom,
        1 => ScanMode::All,
        2 => ScanMode::None,
        _ => ScanMode::Rand(rand_p),
    };
    c
}

#[test]
fn hash_is_deterministic_across_constructions() {
    for policy in PolicyChoice::paper_set() {
        for swap in [SwapChoice::Ssd, SwapChoice::Zram] {
            assert_eq!(hash(policy, swap, 0.75), hash(policy, swap, 0.75));
        }
    }
}

#[test]
fn named_variants_hash_distinctly() {
    let mut seen = std::collections::HashSet::new();
    for policy in PolicyChoice::paper_set() {
        assert!(
            seen.insert(hash(policy, SwapChoice::Ssd, 0.5)),
            "{policy:?} collided with another paper-set policy"
        );
    }
}

#[test]
fn swap_ratio_and_faults_are_meaningful() {
    let h = |swap, ratio, faults: FaultConfig| {
        SystemConfig::new(PolicyChoice::MgLruDefault, swap)
            .capacity_ratio(ratio)
            .faults(faults)
            .stable_hash()
    };
    let base = h(SwapChoice::Ssd, 0.5, FaultConfig::none());
    assert_ne!(base, h(SwapChoice::Zram, 0.5, FaultConfig::none()));
    assert_ne!(base, h(SwapChoice::Ssd, 0.75, FaultConfig::none()));
    assert_ne!(base, h(SwapChoice::Ssd, 0.5, FaultConfig::stalling_ssd()));
}

/// A `MgLruCustom` carrying the kernel-default config is the *same
/// experiment* as `MgLruDefault`; the hash must agree so the cache and
/// the in-memory cell store treat them as one cell.
#[test]
fn custom_kernel_default_aliases_mglru_default() {
    assert_eq!(
        hash(
            PolicyChoice::MgLruCustom(MgLruConfig::kernel_default()),
            SwapChoice::Ssd,
            0.5
        ),
        hash(PolicyChoice::MgLruDefault, SwapChoice::Ssd, 0.5),
    );
}

/// The config's `seed` field is overwritten with the trial seed when the
/// kernel builds the policy, so it is semantically *irrelevant* to the
/// cell identity and must not perturb the hash (the trial seed enters the
/// cache key separately).
#[test]
fn policy_seed_field_is_not_meaningful() {
    let mut a = MgLruConfig::kernel_default();
    let mut b = MgLruConfig::kernel_default();
    a.seed = 1;
    b.seed = 0xDEAD_BEEF;
    assert_eq!(base_hash(a), base_hash(b));
}

proptest! {
    /// Flipping any single semantically meaningful MG-LRU knob changes
    /// the system hash; leaving everything unchanged never does.
    #[test]
    fn each_mglru_knob_is_meaningful(
        max_gens in 2u32..64,
        bloom_shift in 4u32..20,
        thresh in 0.1f64..4.0,
        spatial in 0u32..2,
        kp in 0.1f64..8.0,
        mode in 0u32..4,
        rand_p in 0.05f64..0.95,
    ) {
        let base = cfg_from(max_gens, bloom_shift, thresh, spatial, kp, mode, rand_p);
        let h0 = base_hash(base);
        prop_assert_eq!(h0, base_hash(base));

        let mut m = base;
        m.max_gens += 1;
        prop_assert_ne!(h0, base_hash(m));

        let mut m = base;
        m.bloom_shift += 1;
        prop_assert_ne!(h0, base_hash(m));

        let mut m = base;
        m.insert_threshold_per_line += 0.125;
        prop_assert_ne!(h0, base_hash(m));

        let mut m = base;
        m.spatial_scan = !m.spatial_scan;
        prop_assert_ne!(h0, base_hash(m));

        let mut m = base;
        m.pid_gains.0 += 0.25;
        prop_assert_ne!(h0, base_hash(m));

        let mut m = base;
        m.pid_gains.2 += 0.25;
        prop_assert_ne!(h0, base_hash(m));

        let mut m = base;
        m.scan_mode = match m.scan_mode {
            ScanMode::Bloom => ScanMode::All,
            ScanMode::All => ScanMode::None,
            ScanMode::None => ScanMode::Rand(rand_p),
            ScanMode::Rand(_) => ScanMode::Bloom,
        };
        prop_assert_ne!(h0, base_hash(m));

        if let ScanMode::Rand(p) = base.scan_mode {
            let mut m = base;
            m.scan_mode = ScanMode::Rand(p / 2.0);
            prop_assert_ne!(h0, base_hash(m));
        }
    }

    /// The capacity ratio is meaningful at any representable resolution —
    /// the hash folds in the exact f64 bits, not a rounded percentage.
    #[test]
    fn ratio_is_meaningful_at_full_precision(
        ratio in 0.1f64..0.95,
        bump in 1e-9f64..1e-3,
    ) {
        let a = hash(PolicyChoice::Clock, SwapChoice::Ssd, ratio);
        let b = hash(PolicyChoice::Clock, SwapChoice::Ssd, ratio + bump);
        prop_assert_ne!(a, b);
    }
}
