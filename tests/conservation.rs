//! End-to-end accounting invariants: whatever the policy or medium, the
//! kernel's books must balance.

use pagesim::{Experiment, PolicyChoice, RunMetrics, SwapChoice, SystemConfig};
use pagesim_workloads::tpch::{TpchConfig, TpchWorkload};
use pagesim_workloads::ycsb::{YcsbConfig, YcsbMix, YcsbWorkload};

fn run(policy: PolicyChoice, swap: SwapChoice, ratio: f64) -> RunMetrics {
    let w = TpchWorkload::new(TpchConfig::tiny());
    let c = SystemConfig::new(policy, swap).capacity_ratio(ratio).cores(4);
    Experiment::new(c).run(&w, 3)
}

fn check_books(m: &RunMetrics) {
    // Every eviction either wrote to swap or dropped a clean copy.
    assert_eq!(
        m.evictions,
        m.swap_outs + m.clean_drops,
        "evictions must be writes + clean drops"
    );
    // Every major fault read the device exactly once (anon-only workload).
    assert_eq!(m.major_faults, m.swap_stats.reads, "one device read per major fault");
    // Every swap-out is one device write.
    assert_eq!(m.swap_outs, m.swap_stats.writes);
    // A page must fault in before it can be evicted.
    assert!(m.minor_faults + m.major_faults >= m.evictions);
    // First touches are bounded by the footprint.
    assert!(m.minor_faults <= m.footprint_pages as u64);
    // CPU time was consumed and runtime advanced.
    assert!(m.app_cpu_ns > 0 && m.runtime_ns > 0);
}

#[test]
fn books_balance_under_pressure_all_policies() {
    for policy in PolicyChoice::paper_set() {
        let m = run(policy, SwapChoice::Zram, 0.5);
        assert!(m.major_faults > 0, "{}: pressure sanity", policy.label());
        check_books(&m);
    }
}

#[test]
fn books_balance_on_ssd() {
    for policy in [PolicyChoice::Clock, PolicyChoice::MgLruDefault] {
        check_books(&run(policy, SwapChoice::Ssd, 0.5));
    }
}

#[test]
fn books_balance_without_pressure() {
    let m = run(PolicyChoice::MgLruDefault, SwapChoice::Zram, 1.0);
    assert_eq!(m.major_faults, 0);
    assert_eq!(m.swap_outs, 0);
    assert_eq!(m.evictions, 0, "no pressure, no reclaim");
    // Every distinct touched page first-faults exactly once; query windows
    // mean not every page of the footprint is necessarily touched.
    assert!(m.minor_faults > 0 && m.minor_faults <= m.footprint_pages as u64);
}

#[test]
fn clean_drop_fast_path_saves_writes() {
    // Read-mostly re-faulted pages must not be re-written to swap: the
    // swap-cache fast path keeps writes strictly below evictions under a
    // rescan-heavy workload.
    let m = run(PolicyChoice::Clock, SwapChoice::Zram, 0.5);
    assert!(m.clean_drops > 0, "fast path never used");
    assert!(m.swap_outs < m.evictions);
}

#[test]
fn ycsb_request_accounting_is_complete() {
    let cfg = YcsbConfig::tiny(YcsbMix::A);
    let w = YcsbWorkload::new(cfg, 5);
    let c = SystemConfig::new(PolicyChoice::MgLruDefault, SwapChoice::Zram)
        .capacity_ratio(0.5)
        .cores(4);
    let m = Experiment::new(c).run(&w, 4);
    let measured = m.read_latency.count() + m.write_latency.count();
    let expected = (cfg.requests as f64 * (1.0 - cfg.warmup_fraction)) as u64;
    assert_eq!(measured, expected, "every non-warmup request must be recorded");
    assert!(m.read_latency.value_at_percentile(50.0) > 0);
}

#[test]
fn capacity_ratio_monotonically_reduces_faults() {
    let w = TpchWorkload::new(TpchConfig::tiny());
    let mut last = u64::MAX;
    for ratio in [0.5, 0.75, 0.9] {
        let c = SystemConfig::new(PolicyChoice::MgLruDefault, SwapChoice::Zram)
            .capacity_ratio(ratio)
            .cores(4);
        let m = Experiment::new(c).run(&w, 9);
        assert!(
            m.major_faults <= last,
            "more memory must not mean more faults ({ratio}: {} vs {last})",
            m.major_faults
        );
        last = m.major_faults;
    }
}
