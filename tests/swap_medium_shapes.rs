//! Swap-medium shape assertions (§V-D of the paper): ZRAM collapses
//! runtime, equalizes Clock and MG-LRU throughput, and shifts costs from
//! device waits to CPU.

use pagesim::experiments::{fig11, fig9, Bench, Scale, Wl};
use pagesim::{Experiment, PolicyChoice, SwapChoice, SystemConfig};
use pagesim_workloads::buffered::{BufferedIoConfig, BufferedIoWorkload};
use pagesim_policy::MgLruConfig;

fn bench() -> Bench {
    Bench::new(Scale {
        trials: 4,
        footprint: 0.25,
        seed: 0xFEED,
        page_compression: None,
    })
}

#[test]
fn fig11_zram_is_dramatically_faster() {
    // Fig. 11: switching to ZRAM collapses runtime on every workload
    // (the paper measures the media two orders of magnitude apart).
    let b = bench();
    let f = fig11(&b);
    for row in &f.rows {
        assert!(
            row.runtime_ratio < 0.5,
            "{}/{}: zram only {:.2}x of ssd runtime",
            row.workload.label(),
            row.policy.label(),
            row.runtime_ratio
        );
        // Fault volume stays the same order of magnitude: the speedup is
        // about cost per fault, not fewer faults.
        assert!(
            (0.5..2.0).contains(&row.fault_ratio),
            "{}/{}: fault ratio {:.2}",
            row.workload.label(),
            row.policy.label(),
            row.fault_ratio
        );
    }
}

#[test]
fn fig9_clock_matches_mglru_under_zram() {
    // Fig. 9: with ZRAM swap Clock's throughput catches up with MG-LRU
    // (the rmap-walk overhead MG-LRU avoids no longer hides behind 7.5ms
    // device waits — but it is also small in absolute terms).
    let b = bench();
    let f = fig9(&b);
    for wl in [Wl::Tpch, Wl::YcsbA, Wl::YcsbB, Wl::YcsbC] {
        let clock = f.norm(wl, PolicyChoice::Clock).unwrap();
        assert!(
            (0.7..1.35).contains(&clock),
            "{}: clock/mglru = {clock:.3} under zram",
            wl.label()
        );
    }
}

#[test]
fn zram_shifts_cost_to_cpu() {
    // ZRAM swap work is compression on the faulting/reclaiming thread:
    // kernel+app CPU per fault must be far higher than the SSD run's,
    // where the device does the waiting.
    let w = BufferedIoWorkload::new(BufferedIoConfig::tiny());
    let run = |swap| {
        let c = SystemConfig::new(PolicyChoice::MgLruDefault, swap)
            .capacity_ratio(0.5)
            .cores(4);
        Experiment::new(c).run(&w, 8)
    };
    let ssd = run(SwapChoice::Ssd);
    let zram = run(SwapChoice::Zram);
    assert!(zram.runtime_ns < ssd.runtime_ns / 2);
    // Same device-read counts (same fault demand order of magnitude)...
    assert!(zram.major_faults > 0 && ssd.major_faults > 0);
    // ...but the zram run did its swap work on the CPU.
    let zram_cpu_per_fault = zram.kernel_cpu_ns as f64 / zram.swap_outs.max(1) as f64;
    assert!(
        zram_cpu_per_fault > 20_000.0,
        "zram swap-out must cost >= 20us CPU each, got {zram_cpu_per_fault:.0}ns"
    );
}

#[test]
fn pid_tier_protection_helps_buffered_io() {
    // The §III-D machinery (our extension experiment): with the refault
    // PID controller active, the hot fd-read subset is protected and the
    // workload faults less than with the controller zeroed out.
    let w = BufferedIoWorkload::new(BufferedIoConfig::default());
    let run = |gains| {
        let policy = PolicyChoice::MgLruCustom(MgLruConfig {
            pid_gains: gains,
            ..MgLruConfig::kernel_default()
        });
        let c = SystemConfig::new(policy, SwapChoice::Ssd)
            .capacity_ratio(0.5)
            .cores(4);
        Experiment::new(c).run(&w, 2)
    };
    let on = run((1.0, 0.0, 0.0));
    let off = run((0.0, 0.0, 0.0));
    assert!(on.policy.tier_protected > 0, "controller never protected");
    assert_eq!(off.policy.tier_protected, 0, "zero gains must not protect");
    assert!(
        on.major_faults < off.major_faults,
        "protection must reduce faults ({} vs {})",
        on.major_faults,
        off.major_faults
    );
}
