//! Cross-crate determinism: a run is a pure function of (config, seed).
//! The paper's methodology (25 executions per cell) only makes sense if
//! trial-to-trial variation comes from the modeled sources, not from
//! incidental nondeterminism in the simulator.

use pagesim::{Experiment, FaultConfig, PolicyChoice, SwapChoice, SystemConfig};
use pagesim_engine::{FaultPlan, PressureStep, StallPlan, MILLISECOND, SECOND};
use pagesim_workloads::pagerank::{PageRankConfig, PageRankWorkload};
use pagesim_workloads::tpch::{TpchConfig, TpchWorkload};
use pagesim_workloads::ycsb::{YcsbConfig, YcsbMix, YcsbWorkload};
use pagesim_workloads::Workload;

fn config(policy: PolicyChoice, swap: SwapChoice) -> SystemConfig {
    SystemConfig::new(policy, swap).capacity_ratio(0.5).cores(4)
}

fn assert_deterministic(w: &(dyn Workload + Sync), policy: PolicyChoice, swap: SwapChoice) {
    let e = Experiment::new(config(policy, swap));
    let a = e.run(w, 99);
    let b = e.run(w, 99);
    assert_eq!(a.runtime_ns, b.runtime_ns, "{} runtime", policy.label());
    assert_eq!(a.major_faults, b.major_faults);
    assert_eq!(a.minor_faults, b.minor_faults);
    assert_eq!(a.evictions, b.evictions);
    assert_eq!(a.policy, b.policy, "policy counters must replay exactly");
    assert_eq!(
        a.read_latency.count(),
        b.read_latency.count(),
        "request accounting must replay"
    );
}

#[test]
fn tpch_replays_bit_exact() {
    let w = TpchWorkload::new(TpchConfig::tiny());
    for policy in [
        PolicyChoice::Clock,
        PolicyChoice::MgLruDefault,
        PolicyChoice::MgLruScanRand,
    ] {
        assert_deterministic(&w, policy, SwapChoice::Zram);
    }
}

#[test]
fn pagerank_replays_bit_exact_on_both_media() {
    let w = PageRankWorkload::new(PageRankConfig::tiny(), 5);
    assert_deterministic(&w, PolicyChoice::MgLruDefault, SwapChoice::Ssd);
    assert_deterministic(&w, PolicyChoice::Clock, SwapChoice::Zram);
}

#[test]
fn ycsb_replays_bit_exact() {
    let w = YcsbWorkload::new(YcsbConfig::tiny(YcsbMix::A), 5);
    assert_deterministic(&w, PolicyChoice::MgLruDefault, SwapChoice::Zram);
}

#[test]
fn different_seeds_diverge() {
    let w = TpchWorkload::new(TpchConfig::tiny());
    let e = Experiment::new(config(PolicyChoice::MgLruDefault, SwapChoice::Zram));
    let a = e.run(&w, 1);
    let b = e.run(&w, 2);
    assert!(
        a.runtime_ns != b.runtime_ns || a.major_faults != b.major_faults,
        "seed must matter"
    );
}

/// A plan that engages every fault path at tiny-workload timescales:
/// transient errors, stall windows, a pressure balloon, and the OOM killer.
fn aggressive_faults() -> FaultConfig {
    FaultConfig {
        plan: FaultPlan {
            error_rate: 0.02,
            fail_permanently_at: None,
            stall: Some(StallPlan {
                first_onset: MILLISECOND,
                period: 4 * MILLISECOND,
                onset_jitter: 200_000,
                duration: 800_000,
                duration_jitter: 200_000,
            }),
            pressure: vec![PressureStep {
                at: 500_000,
                frac: 0.2,
                duration: SECOND,
            }],
        },
        oom_after_stalls: Some(64),
        ..FaultConfig::none()
    }
}

#[test]
fn faulty_runs_replay_byte_identically() {
    // Same seed + same fault plan -> byte-identical reports, for both
    // policies and both media. The Debug rendering covers every counter,
    // histogram summary, and the error field at once.
    let w = TpchWorkload::new(TpchConfig::tiny());
    for (policy, swap) in [
        (PolicyChoice::Clock, SwapChoice::Ssd),
        (PolicyChoice::MgLruDefault, SwapChoice::Zram),
    ] {
        let e = Experiment::new(config(policy, swap).faults(aggressive_faults()));
        let a = e.run(&w, 41);
        let b = e.run(&w, 41);
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "{} on {swap:?} must replay under faults",
            policy.label()
        );
        let c = e.run(&w, 42);
        assert_ne!(
            format!("{a:?}"),
            format!("{c:?}"),
            "different seeds must draw different fault sequences"
        );
    }
}

#[test]
fn default_fault_config_is_zero_drift() {
    // A config that never mentions faults and one with the explicit empty
    // fault model must produce byte-identical reports.
    let w = YcsbWorkload::new(YcsbConfig::tiny(YcsbMix::A), 5);
    let base = config(PolicyChoice::MgLruDefault, SwapChoice::Ssd);
    let with_none = base.clone().faults(FaultConfig::none());
    let a = Experiment::new(base).run(&w, 9);
    let b = Experiment::new(with_none).run(&w, 9);
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
    assert_eq!(a.io_errors, 0);
    assert_eq!(a.oom_kills, 0);
    assert_eq!(a.error, None);
}

#[test]
fn trial_sets_are_order_independent() {
    // run_trials may execute trials on worker threads; results must land
    // by trial index regardless of completion order.
    let w = TpchWorkload::new(TpchConfig::tiny());
    let e = Experiment::new(config(PolicyChoice::Clock, SwapChoice::Zram));
    let a = e.run_trials(&w, 7, 4);
    let b = e.run_trials(&w, 7, 4);
    assert_eq!(a.runtimes(), b.runtimes());
    assert_eq!(a.faults(), b.faults());
}
