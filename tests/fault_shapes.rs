//! Shape assertions for the fault-injection experiment: the degraded-SSD
//! scenario must actually exercise the fault machinery (errors, retries,
//! OOM kills, stall-inflated tails), and its results must be a pure
//! function of the seed like every other experiment.

use pagesim::experiments::{faults, Bench, Scale, Wl};
use pagesim::PolicyChoice;

#[test]
fn faults_experiment_exercises_every_fault_path() {
    let b = Bench::new(Scale::smoke());
    let f = faults(&b);
    assert_eq!(f.rows.len(), 4, "2 workloads x 2 policies");

    let total = |g: fn(&pagesim::experiments::FaultsRow) -> u64| -> u64 {
        f.rows.iter().map(g).sum()
    };
    assert!(total(|r| r.io_errors) > 0, "no injected errors surfaced");
    assert!(total(|r| r.io_retries) > 0, "no swap-in retries happened");
    assert!(total(|r| r.oom_kills) > 0, "OOM killer never fired");
    assert!(total(|r| r.alloc_stalls) > 0, "no allocation stalls");
    assert!(
        total(|r| r.degraded_ns_per_trial) > 0,
        "no degraded time recorded"
    );

    for r in &f.rows {
        assert!(r.healthy_perf > 0.0);
        assert!(r.faulty_perf > 0.0);
        if r.workload.is_ycsb() {
            // Device stalls must show up in the extreme read tail: p99.99
            // under the stalling plan dwarfs the healthy tail.
            assert!(
                r.faulty_read_tail_ns[1] > 2 * r.healthy_read_tail_ns[1],
                "{}/{}: stalls not visible at p99.99 ({} vs {})",
                r.workload.label(),
                r.policy.label(),
                r.faulty_read_tail_ns[1],
                r.healthy_read_tail_ns[1],
            );
        }
    }
}

#[test]
fn faults_experiment_is_deterministic_per_seed() {
    let a = faults(&Bench::new(Scale::smoke()));
    let b = faults(&Bench::new(Scale::smoke()));
    assert_eq!(
        format!("{:?}", a.rows),
        format!("{:?}", b.rows),
        "faults experiment must replay exactly for a fixed seed"
    );
    // And the accessor finds the cells the grid declares.
    for wl in [Wl::Tpch, Wl::YcsbA] {
        for p in [PolicyChoice::Clock, PolicyChoice::MgLruDefault] {
            assert!(a.row(wl, p).is_some(), "missing {}/{}", wl.label(), p.label());
        }
    }
}
