//! Property tests for the shadow-entry arena (`pagesim::workingset`).
//!
//! The arena backs the refault-distance observability counters on the
//! fault path, so its one-slot-per-page bound must hold under *any*
//! interleaving of evictions (record), refaults (take), and task kills
//! (reclaim) — never growing past the capacity fixed at construction,
//! and always agreeing with a reference set on which keys are live.

use pagesim::workingset::ShadowArena;
use proptest::prelude::*;

const PAGES: u32 = 64;

proptest! {
    #[test]
    fn arena_stays_within_its_bound_under_random_traffic(
        ops in prop::collection::vec((0u32..PAGES, 0u8..3), 0..512)
    ) {
        let mut arena = ShadowArena::new(PAGES as usize);
        let mut live = std::collections::BTreeSet::new();
        let mut seq = 0u64;
        for (key, op) in ops {
            match op {
                0 => {
                    seq += 1;
                    arena.record(key, seq * 10, seq);
                    live.insert(key);
                }
                1 => {
                    let took = arena.take(key);
                    prop_assert_eq!(took.is_some(), live.remove(&key));
                    if let Some(e) = took {
                        prop_assert!(e.eviction_seq <= seq);
                    }
                }
                _ => prop_assert_eq!(arena.reclaim(key), live.remove(&key)),
            }
            prop_assert_eq!(arena.len(), live.len() as u64);
            prop_assert!(arena.len() <= arena.capacity() as u64);
            prop_assert_eq!(arena.capacity(), PAGES as usize);
        }
    }

    #[test]
    fn re_eviction_keeps_the_newest_entry(
        keys in prop::collection::vec(0u32..PAGES, 1..128)
    ) {
        let mut arena = ShadowArena::new(PAGES as usize);
        let mut newest = std::collections::BTreeMap::new();
        for (i, key) in keys.iter().enumerate() {
            let seq = i as u64 + 1;
            arena.record(*key, seq, seq);
            newest.insert(*key, seq);
        }
        prop_assert_eq!(arena.len(), newest.len() as u64);
        for (key, seq) in newest {
            prop_assert_eq!(arena.take(key).map(|e| e.eviction_seq), Some(seq));
        }
        prop_assert!(arena.is_empty());
    }
}
