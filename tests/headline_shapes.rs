//! Reduced-scale shape assertions for the paper's headline findings.
//!
//! These run the real experiment drivers at smoke scale and assert the
//! *relationships* the paper reports (who wins, spreads, correlations) —
//! not absolute numbers. See EXPERIMENTS.md for the full-scale record.

use pagesim::experiments::{fig1, fig2, Bench, Scale, Wl};
use pagesim::PolicyChoice;

fn bench() -> Bench {
    Bench::new(Scale {
        trials: 5,
        footprint: 0.25,
        seed: 0xBEEF,
        page_compression: None,
    })
}

#[test]
fn fig1_mglru_reduces_ycsb_faults() {
    // Fig. 1b: MG-LRU's wins come from decreased swapping; on the zipfian
    // YCSB workloads this is its most stable advantage.
    let b = bench();
    let f = fig1(&b);
    for row in &f.rows {
        if row.workload.is_ycsb() {
            assert!(
                row.faults_vs_clock < 1.02,
                "{}: mglru faults {}x clock",
                row.workload.label(),
                row.faults_vs_clock
            );
        }
        // Nothing should be catastrophically worse in either direction.
        assert!(
            (0.5..1.3).contains(&row.perf_vs_clock),
            "{}: implausible ratio {}",
            row.workload.label(),
            row.perf_vs_clock
        );
    }
}

#[test]
fn fig2_tpch_is_wide_and_linear() {
    // Fig. 2a: TPC-H runtimes spread several-fold for BOTH policies and
    // track faults almost perfectly (paper: r² > 0.98; spread ~3x).
    let b = bench();
    let f = fig2(&b);
    for cell in f.cells.iter().filter(|c| c.workload == Wl::Tpch) {
        assert!(
            cell.runtime_spread > 1.4,
            "{}: tpch spread only {:.2}x",
            cell.policy.label(),
            cell.runtime_spread
        );
        assert!(
            cell.r_squared > 0.9,
            "{}: tpch r2 {:.3}",
            cell.policy.label(),
            cell.r_squared
        );
    }
}

#[test]
fn fig2_pagerank_clock_is_tight_mglru_is_wide() {
    // Fig. 2b: Clock's PageRank distribution is tight; MG-LRU's is
    // several times wider.
    let b = bench();
    let f = fig2(&b);
    let std_of = |policy: PolicyChoice| {
        let cell = f
            .cells
            .iter()
            .find(|c| c.workload == Wl::PageRank && c.policy == policy)
            .expect("cell");
        let rts: Vec<f64> = cell.points.iter().map(|p| p.0).collect();
        pagesim_stats::Summary::of(&rts).std
    };
    let clock = std_of(PolicyChoice::Clock);
    let mglru = std_of(PolicyChoice::MgLruDefault);
    assert!(
        mglru > clock,
        "mglru std {mglru:.3} must exceed clock std {clock:.3}"
    );
}

#[test]
fn fig2_pagerank_runtime_decouples_from_faults_for_mglru() {
    // Fig. 2b: PageRank runtime correlates with faults far less for
    // MG-LRU than TPC-H does (critical-path faults, not volume).
    let b = bench();
    let f = fig2(&b);
    let tpch_r2 = f
        .cells
        .iter()
        .find(|c| c.workload == Wl::Tpch && c.policy == PolicyChoice::MgLruDefault)
        .unwrap()
        .r_squared;
    let pr_r2 = f
        .cells
        .iter()
        .find(|c| c.workload == Wl::PageRank && c.policy == PolicyChoice::MgLruDefault)
        .unwrap()
        .r_squared;
    assert!(
        pr_r2 <= tpch_r2 + 0.05,
        "pagerank r2 ({pr_r2:.3}) should not exceed tpch's ({tpch_r2:.3})"
    );
}
